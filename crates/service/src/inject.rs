//! Deterministic fault injection for chaos-testing the service
//! (`probterm serve --inject <spec>`).
//!
//! The spec is a `;`-separated list of clauses:
//!
//! ```text
//! seed=N        PRNG seed for probabilistic rules (default 0)
//! panic=RULE    panic inside the engine (caught; structured `internal` reply)
//! slow=RULE:MS  sleep MS milliseconds before running the engine
//! drop=RULE     write half the reply bytes, then hard-close the connection
//! ```
//!
//! where `RULE` is either a probability in `[0,1]` (e.g. `0.2`, decided by a
//! seeded splitmix64 hash of the engine-run counter — deterministic across
//! runs with the same seed) or `@N` (every `N`-th engine run, exactly —
//! the form scripted smoke tests use, since it makes *which* request gets
//! hit a pure function of request order). Example:
//!
//! ```text
//! --inject 'seed=7;panic=@4;slow=0.1:50;drop=@9'
//! ```
//!
//! Faults apply only to engine runs (cache misses of engine ops): control
//! ops, cache hits and shed requests are never injected, so the fault
//! schedule of a lock-step script is stable under cache warm-up.

/// When a fault rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRule {
    /// Never fires (the clause was absent).
    Never,
    /// Fires on every `N`-th engine run (1-based: runs N, 2N, ...).
    Every(u64),
    /// Fires with this probability, decided by a seeded hash of the run
    /// counter.
    Rate(f64),
}

impl FaultRule {
    fn fires(self, seed: u64, salt: u64, run: u64) -> bool {
        match self {
            FaultRule::Never => false,
            FaultRule::Every(n) => n > 0 && run % n == 0,
            FaultRule::Rate(p) => {
                // splitmix64 of (seed, salt, run): uniform in [0, 1).
                let mut z = seed
                    .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .wrapping_add(run.wrapping_mul(0xbf58_476d_1ce4_e5b9));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                ((z >> 11) as f64) / ((1u64 << 53) as f64) < p
            }
        }
    }
}

/// The faults one engine run should suffer, as decided by
/// [`InjectSpec::decide`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectDecision {
    /// Panic inside the engine (caught by the worker's panic guard).
    pub panic: bool,
    /// Sleep this long before running the engine.
    pub slow_ms: Option<u64>,
    /// Truncate the reply mid-line and hard-close the connection.
    pub drop_reply: bool,
}

impl InjectDecision {
    /// Number of faults this decision injects (for the `injected_faults`
    /// counter).
    pub fn fault_count(&self) -> u64 {
        u64::from(self.panic) + u64::from(self.slow_ms.is_some()) + u64::from(self.drop_reply)
    }
}

/// A parsed `--inject` specification. See the module docs for the grammar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectSpec {
    /// Seed for probabilistic rules.
    pub seed: u64,
    /// Engine-panic rule.
    pub panic: FaultRule,
    /// Engine-slowdown rule and the sleep it injects.
    pub slow: FaultRule,
    /// Milliseconds the `slow` rule sleeps for.
    pub slow_ms: u64,
    /// Mid-reply connection-drop rule.
    pub drop: FaultRule,
}

impl InjectSpec {
    /// Parses the `--inject` grammar; `Err` carries a human-readable reason.
    pub fn parse(spec: &str) -> Result<InjectSpec, String> {
        let mut parsed = InjectSpec {
            seed: 0,
            panic: FaultRule::Never,
            slow: FaultRule::Never,
            slow_ms: 0,
            drop: FaultRule::Never,
        };
        for clause in spec.split(';').filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("clause `{clause}` is not `key=value`"))?;
            match key {
                "seed" => {
                    parsed.seed =
                        value.parse().map_err(|_| format!("seed `{value}` is not a u64"))?;
                }
                "panic" => parsed.panic = parse_rule(value)?,
                "drop" => parsed.drop = parse_rule(value)?,
                "slow" => {
                    let (rule, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("slow clause `{value}` needs `RULE:MS`"))?;
                    parsed.slow = parse_rule(rule)?;
                    parsed.slow_ms =
                        ms.parse().map_err(|_| format!("slow ms `{ms}` is not a u64"))?;
                }
                other => return Err(format!("unknown inject clause `{other}`")),
            }
        }
        Ok(parsed)
    }

    /// The faults to inject into the `run`-th engine run (1-based).
    pub fn decide(&self, run: u64) -> InjectDecision {
        InjectDecision {
            panic: self.panic.fires(self.seed, 1, run),
            slow_ms: self.slow.fires(self.seed, 2, run).then_some(self.slow_ms),
            drop_reply: self.drop.fires(self.seed, 3, run),
        }
    }
}

fn parse_rule(text: &str) -> Result<FaultRule, String> {
    if let Some(n) = text.strip_prefix('@') {
        let n: u64 = n.parse().map_err(|_| format!("modulus `{text}` is not `@N`"))?;
        if n == 0 {
            return Err("modulus `@0` is meaningless".to_string());
        }
        Ok(FaultRule::Every(n))
    } else {
        let p: f64 = text.parse().map_err(|_| format!("rate `{text}` is not a number"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("rate `{text}` is outside [0, 1]"));
        }
        Ok(FaultRule::Rate(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let spec = InjectSpec::parse("seed=7;panic=@4;slow=0.5:50;drop=@9").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.panic, FaultRule::Every(4));
        assert_eq!(spec.slow, FaultRule::Rate(0.5));
        assert_eq!(spec.slow_ms, 50);
        assert_eq!(spec.drop, FaultRule::Every(9));
        assert!(InjectSpec::parse("").unwrap().decide(1) == InjectDecision::default());
        for bad in ["panic", "panic=@0", "panic=2.0", "slow=@3", "wat=1", "seed=x"] {
            assert!(InjectSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn modulus_rules_hit_exactly_every_nth_run() {
        let spec = InjectSpec::parse("panic=@4").unwrap();
        let hits: Vec<u64> = (1..=12).filter(|&run| spec.decide(run).panic).collect();
        assert_eq!(hits, vec![4, 8, 12]);
    }

    #[test]
    fn rates_are_deterministic_in_the_seed_and_roughly_calibrated() {
        let spec = InjectSpec::parse("seed=42;drop=0.25").unwrap();
        let first: Vec<bool> = (1..=1000).map(|run| spec.decide(run).drop_reply).collect();
        let second: Vec<bool> = (1..=1000).map(|run| spec.decide(run).drop_reply).collect();
        assert_eq!(first, second, "decisions must be reproducible");
        let hits = first.iter().filter(|&&b| b).count();
        assert!((150..=350).contains(&hits), "0.25 rate fired {hits}/1000 times");
        // Different fault kinds draw independent decisions.
        let both = InjectSpec::parse("seed=42;drop=0.5;panic=0.5").unwrap();
        let disagree =
            (1..=200).any(|run| both.decide(run).drop_reply != both.decide(run).panic);
        assert!(disagree, "panic and drop must not share a decision stream");
    }
}
