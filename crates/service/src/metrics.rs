//! Latency-aware service metrics: per-op request counters, per-phase
//! latency histograms, and a Prometheus-style text exposition.
//!
//! Every request the server handles is timed in four phases — queue wait,
//! cache lookup, engine run, reply serialization — on monotonic
//! [`std::time::Instant`] clocks (via [`probterm_telemetry::SpanTimer`]),
//! recorded in microseconds into log-bucketed
//! [`probterm_telemetry::Histogram`]s (≤ ~25 % relative bucket error).
//! The `stats` op reports p50/p95/p99 per op and phase; the `metrics` op
//! renders the same numbers as Prometheus text exposition.

use crate::protocol::Op;
use crate::server::StatsSnapshot;
use probterm_telemetry::{Counter, Histogram, HistogramSnapshot};
use serde::Value;

/// The four measured request phases plus the end-to-end total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Time between enqueueing the job and a worker popping it, in µs.
    pub queue_us: u64,
    /// Result-cache lookup (and admission decision) time, in µs.
    pub cache_us: u64,
    /// Engine run time (zero for control ops and cache hits), in µs.
    pub engine_us: u64,
    /// Reply rendering time, in µs.
    pub serialize_us: u64,
    /// End-to-end time including queue wait, in µs.
    pub total_us: u64,
}

/// Counters and per-phase latency histograms for one op.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Requests handled (including error replies).
    pub requests: Counter,
    /// Requests that produced an error reply.
    pub errors: Counter,
    /// End-to-end latency (µs).
    pub total: Histogram,
    /// Queue-wait latency (µs).
    pub queue: Histogram,
    /// Cache-lookup latency (µs).
    pub cache: Histogram,
    /// Engine-run latency (µs).
    pub engine: Histogram,
    /// Reply-serialization latency (µs).
    pub serialize: Histogram,
}

/// A plain-data snapshot of one op's metrics (for the `stats` reply).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpMetricsSnapshot {
    /// The op these numbers belong to.
    pub op: Op,
    /// Requests handled.
    pub requests: u64,
    /// Error replies.
    pub errors: u64,
    /// End-to-end latency histogram.
    pub total: HistogramSnapshot,
    /// Per-phase latency histograms, keyed by phase name.
    pub phases: Vec<(&'static str, HistogramSnapshot)>,
}

/// The whole per-op metrics table. One instance lives in the server state;
/// workers record into it concurrently (all counters are relaxed atomics).
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    ops: [OpMetrics; Op::ALL.len()],
}

impl ServiceMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> ServiceMetrics {
        ServiceMetrics::default()
    }

    /// The metrics cell of one op.
    pub fn op(&self, op: Op) -> &OpMetrics {
        &self.ops[op.index()]
    }

    /// Records one handled request.
    pub fn record(&self, op: Op, phases: &PhaseTimes, ok: bool) {
        let cell = self.op(op);
        cell.requests.incr();
        if !ok {
            cell.errors.incr();
        }
        cell.total.record(phases.total_us);
        cell.queue.record(phases.queue_us);
        cell.cache.record(phases.cache_us);
        cell.engine.record(phases.engine_us);
        cell.serialize.record(phases.serialize_us);
    }

    /// Snapshots every op that has seen at least one request.
    #[must_use]
    pub fn snapshot(&self) -> Vec<OpMetricsSnapshot> {
        Op::ALL
            .iter()
            .filter_map(|&op| {
                let cell = self.op(op);
                if cell.requests.get() == 0 {
                    return None;
                }
                Some(OpMetricsSnapshot {
                    op,
                    requests: cell.requests.get(),
                    errors: cell.errors.get(),
                    total: cell.total.snapshot(),
                    phases: vec![
                        ("queue", cell.queue.snapshot()),
                        ("cache", cell.cache.snapshot()),
                        ("engine", cell.engine.snapshot()),
                        ("serialize", cell.serialize.snapshot()),
                    ],
                })
            })
            .collect()
    }
}

fn quantiles_value(h: &HistogramSnapshot) -> Value {
    Value::Object(vec![
        ("p50".into(), Value::UInt(u128::from(h.p50()))),
        ("p95".into(), Value::UInt(u128::from(h.p95()))),
        ("p99".into(), Value::UInt(u128::from(h.p99()))),
        ("max".into(), Value::UInt(u128::from(h.max()))),
        ("mean".into(), Value::Num(h.mean())),
    ])
}

/// The `"ops"` object of the `stats` reply: per-op request/error counts,
/// end-to-end percentiles and the per-phase breakdown, all in microseconds.
#[must_use]
pub fn ops_value(snapshots: &[OpMetricsSnapshot]) -> Value {
    Value::Object(
        snapshots
            .iter()
            .map(|s| {
                (
                    s.op.as_str().to_string(),
                    Value::Object(vec![
                        ("requests".into(), Value::UInt(u128::from(s.requests))),
                        ("errors".into(), Value::UInt(u128::from(s.errors))),
                        ("total_us".into(), quantiles_value(&s.total)),
                        (
                            "phases_us".into(),
                            Value::Object(
                                s.phases
                                    .iter()
                                    .map(|(name, h)| ((*name).to_string(), quantiles_value(h)))
                                    .collect(),
                            ),
                        ),
                    ]),
                )
            })
            .collect(),
    )
}

/// Renders the Prometheus text exposition format (version 0.0.4): `# HELP` /
/// `# TYPE` comments, `counter` and `summary` families, and `{label="..."}`
/// selectors. Quantile samples use the histogram's bucket upper bounds, so
/// they carry the same ≤ ~25 % relative error as the `stats` percentiles.
#[must_use]
pub fn render_prometheus(snapshots: &[OpMetricsSnapshot], stats: &StatsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    out.push_str("# HELP probterm_uptime_milliseconds Milliseconds since the server started.\n");
    out.push_str("# TYPE probterm_uptime_milliseconds gauge\n");
    let _ = writeln!(out, "probterm_uptime_milliseconds {}", stats.uptime_ms);
    out.push_str("# HELP probterm_requests_served_total Request lines handled, including control ops and errors.\n");
    out.push_str("# TYPE probterm_requests_served_total counter\n");
    let _ = writeln!(out, "probterm_requests_served_total {}", stats.served);
    out.push_str("# HELP probterm_cache_hits_total Result-cache lookups served from the cache.\n");
    out.push_str("# TYPE probterm_cache_hits_total counter\n");
    let _ = writeln!(out, "probterm_cache_hits_total {}", stats.hits);
    out.push_str("# HELP probterm_cache_misses_total Result-cache lookups that ran an engine.\n");
    out.push_str("# TYPE probterm_cache_misses_total counter\n");
    let _ = writeln!(out, "probterm_cache_misses_total {}", stats.misses);
    out.push_str("# HELP probterm_cache_entries Entries currently in the result cache.\n");
    out.push_str("# TYPE probterm_cache_entries gauge\n");
    let _ = writeln!(out, "probterm_cache_entries {}", stats.cache_entries);
    out.push_str("# HELP probterm_cache_bytes Approximate bytes held by cached result payloads.\n");
    out.push_str("# TYPE probterm_cache_bytes gauge\n");
    let _ = writeln!(out, "probterm_cache_bytes {}", stats.cache_bytes);
    out.push_str("# HELP probterm_inflight_requests Engine requests currently being computed.\n");
    out.push_str("# TYPE probterm_inflight_requests gauge\n");
    let _ = writeln!(out, "probterm_inflight_requests {}", stats.inflight);
    out.push_str("# HELP probterm_workers Worker threads in the pool.\n");
    out.push_str("# TYPE probterm_workers gauge\n");
    let _ = writeln!(out, "probterm_workers {}", stats.workers);
    out.push_str("# HELP probterm_shed_total Requests shed by admission control with an overloaded reply.\n");
    out.push_str("# TYPE probterm_shed_total counter\n");
    let _ = writeln!(out, "probterm_shed_total {}", stats.shed);
    out.push_str("# HELP probterm_resumed_total Lower-bound runs resumed from a cached exploration checkpoint.\n");
    out.push_str("# TYPE probterm_resumed_total counter\n");
    let _ = writeln!(out, "probterm_resumed_total {}", stats.resumed);
    out.push_str("# HELP probterm_checkpointed_frontiers_total Partial replies that carried a resumable frontier checkpoint.\n");
    out.push_str("# TYPE probterm_checkpointed_frontiers_total counter\n");
    let _ = writeln!(out, "probterm_checkpointed_frontiers_total {}", stats.checkpointed_frontiers);
    out.push_str("# HELP probterm_injected_faults_total Faults injected by the chaos harness.\n");
    out.push_str("# TYPE probterm_injected_faults_total counter\n");
    let _ = writeln!(out, "probterm_injected_faults_total {}", stats.injected_faults);
    out.push_str("# HELP probterm_drained_in_flight_total Engine requests that finished while the server was draining.\n");
    out.push_str("# TYPE probterm_drained_in_flight_total counter\n");
    let _ = writeln!(out, "probterm_drained_in_flight_total {}", stats.drained_in_flight);
    out.push_str("# HELP probterm_idle_closed_total Connections closed by the idle read timeout.\n");
    out.push_str("# TYPE probterm_idle_closed_total counter\n");
    let _ = writeln!(out, "probterm_idle_closed_total {}", stats.idle_closed);
    out.push_str("# HELP probterm_coalesced_waiters_total Requests coalesced onto an identical in-flight engine run.\n");
    out.push_str("# TYPE probterm_coalesced_waiters_total counter\n");
    let _ = writeln!(out, "probterm_coalesced_waiters_total {}", stats.coalesced_waiters);
    out.push_str("# HELP probterm_coalesce_fanout_max Largest waiter fan-out any single coalesced run has served.\n");
    out.push_str("# TYPE probterm_coalesce_fanout_max gauge\n");
    let _ = writeln!(out, "probterm_coalesce_fanout_max {}", stats.coalesce_fanout_max);
    out.push_str("# HELP probterm_shard_queue_depth Jobs queued per worker shard.\n");
    out.push_str("# TYPE probterm_shard_queue_depth gauge\n");
    for (shard, depth) in stats.shard_depths.iter().enumerate() {
        let _ = writeln!(out, "probterm_shard_queue_depth{{shard=\"{shard}\"}} {depth}");
    }
    out.push_str("# HELP probterm_cache_persist_loaded_total Cache entries loaded from the snapshot file at boot.\n");
    out.push_str("# TYPE probterm_cache_persist_loaded_total counter\n");
    let _ = writeln!(out, "probterm_cache_persist_loaded_total {}", stats.cache_persist_loaded);
    out.push_str("# HELP probterm_cache_persist_saved_total Cache entries written to the snapshot file at drain.\n");
    out.push_str("# TYPE probterm_cache_persist_saved_total counter\n");
    let _ = writeln!(out, "probterm_cache_persist_saved_total {}", stats.cache_persist_saved);
    out.push_str("# HELP probterm_cache_persist_rejected_total Snapshot lines ignored as version-mismatched or corrupt.\n");
    out.push_str("# TYPE probterm_cache_persist_rejected_total counter\n");
    let _ = writeln!(out, "probterm_cache_persist_rejected_total {}", stats.cache_persist_rejected);

    out.push_str("# HELP probterm_requests_total Requests handled, by op.\n");
    out.push_str("# TYPE probterm_requests_total counter\n");
    for s in snapshots {
        let _ = writeln!(out, "probterm_requests_total{{op=\"{}\"}} {}", s.op.as_str(), s.requests);
    }
    out.push_str("# HELP probterm_request_errors_total Error replies, by op.\n");
    out.push_str("# TYPE probterm_request_errors_total counter\n");
    for s in snapshots {
        let _ = writeln!(
            out,
            "probterm_request_errors_total{{op=\"{}\"}} {}",
            s.op.as_str(),
            s.errors
        );
    }

    out.push_str(
        "# HELP probterm_request_duration_microseconds End-to-end request latency, by op.\n",
    );
    out.push_str("# TYPE probterm_request_duration_microseconds summary\n");
    for s in snapshots {
        let op = s.op.as_str();
        for (q, v) in [(0.5, s.total.p50()), (0.95, s.total.p95()), (0.99, s.total.p99())] {
            let _ = writeln!(
                out,
                "probterm_request_duration_microseconds{{op=\"{op}\",quantile=\"{q}\"}} {v}"
            );
        }
        let _ = writeln!(
            out,
            "probterm_request_duration_microseconds_sum{{op=\"{op}\"}} {}",
            s.total.sum()
        );
        let _ = writeln!(
            out,
            "probterm_request_duration_microseconds_count{{op=\"{op}\"}} {}",
            s.total.count()
        );
    }

    out.push_str("# HELP probterm_phase_duration_microseconds Per-phase request latency, by op and phase.\n");
    out.push_str("# TYPE probterm_phase_duration_microseconds summary\n");
    for s in snapshots {
        let op = s.op.as_str();
        for (phase, h) in &s.phases {
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                let _ = writeln!(
                    out,
                    "probterm_phase_duration_microseconds{{op=\"{op}\",phase=\"{phase}\",quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(
                out,
                "probterm_phase_duration_microseconds_sum{{op=\"{op}\",phase=\"{phase}\"}} {}",
                h.sum()
            );
            let _ = writeln!(
                out,
                "probterm_phase_duration_microseconds_count{{op=\"{op}\",phase=\"{phase}\"}} {}",
                h.count()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases(total: u64) -> PhaseTimes {
        PhaseTimes {
            queue_us: total / 10,
            cache_us: total / 20,
            engine_us: total / 2,
            serialize_us: total / 20,
            total_us: total,
        }
    }

    #[test]
    fn records_land_on_the_right_op() {
        let m = ServiceMetrics::new();
        m.record(Op::Lower, &phases(1_000), true);
        m.record(Op::Lower, &phases(3_000), false);
        m.record(Op::Stats, &phases(10), true);
        let snaps = m.snapshot();
        assert_eq!(snaps.len(), 2);
        let lower = snaps.iter().find(|s| s.op == Op::Lower).unwrap();
        assert_eq!(lower.requests, 2);
        assert_eq!(lower.errors, 1);
        assert_eq!(lower.total.count(), 2);
        let stats = snaps.iter().find(|s| s.op == Op::Stats).unwrap();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.errors, 0);
        // Untouched ops are omitted from the snapshot.
        assert!(!snaps.iter().any(|s| s.op == Op::Simulate));
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let m = ServiceMetrics::new();
        for i in 1..=100 {
            m.record(Op::Verify, &phases(i * 100), i % 10 != 0);
        }
        let stats = StatsSnapshot {
            uptime_ms: 1234,
            served: 100,
            hits: 3,
            misses: 97,
            inflight: 0,
            cache_entries: 5,
            cache_capacity: 1024,
            cache_bytes: 2048,
            oldest_entry_ms: Some(15),
            workers: 2,
            shed: 7,
            resumed: 2,
            checkpointed_frontiers: 3,
            injected_faults: 1,
            drained_in_flight: 4,
            idle_closed: 6,
            coalesced_waiters: 15,
            coalesce_fanout_max: 8,
            shard_depths: vec![2, 0, 5],
            cache_persist_loaded: 11,
            cache_persist_saved: 12,
            cache_persist_rejected: 13,
        };
        let text = render_prometheus(&m.snapshot(), &stats);
        assert!(text.contains("probterm_uptime_milliseconds 1234\n"));
        assert!(text.contains("probterm_coalesced_waiters_total 15\n"));
        assert!(text.contains("probterm_coalesce_fanout_max 8\n"));
        assert!(text.contains("probterm_shard_queue_depth{shard=\"0\"} 2\n"));
        assert!(text.contains("probterm_shard_queue_depth{shard=\"2\"} 5\n"));
        assert!(text.contains("probterm_cache_persist_loaded_total 11\n"));
        assert!(text.contains("probterm_cache_persist_saved_total 12\n"));
        assert!(text.contains("probterm_cache_persist_rejected_total 13\n"));
        assert!(text.contains("probterm_cache_bytes 2048\n"));
        assert!(text.contains("probterm_shed_total 7\n"));
        assert!(text.contains("probterm_resumed_total 2\n"));
        assert!(text.contains("probterm_checkpointed_frontiers_total 3\n"));
        assert!(text.contains("probterm_injected_faults_total 1\n"));
        assert!(text.contains("probterm_drained_in_flight_total 4\n"));
        assert!(text.contains("probterm_idle_closed_total 6\n"));
        assert!(text.contains("probterm_requests_total{op=\"verify\"} 100\n"));
        assert!(text.contains("probterm_request_errors_total{op=\"verify\"} 10\n"));
        assert!(text
            .contains("probterm_request_duration_microseconds{op=\"verify\",quantile=\"0.5\"}"));
        assert!(text.contains(
            "probterm_phase_duration_microseconds{op=\"verify\",phase=\"engine\",quantile=\"0.99\"}"
        ));
        assert!(text.contains("probterm_request_duration_microseconds_count{op=\"verify\"} 100\n"));
        // Every non-comment line is `name{labels} value` or `name value` with
        // a numeric value.
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# HELP ") || line.starts_with("# TYPE "), "{line}");
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample value: {line}");
        }
    }

    #[test]
    fn every_family_has_help_before_type_and_no_duplicates() {
        let m = ServiceMetrics::new();
        for &op in &Op::ALL {
            m.record(op, &phases(500), true);
        }
        let stats = StatsSnapshot {
            uptime_ms: 1,
            served: 10,
            hits: 1,
            misses: 9,
            inflight: 1,
            cache_entries: 1,
            cache_capacity: 8,
            cache_bytes: 64,
            oldest_entry_ms: None,
            workers: 1,
            shed: 0,
            resumed: 0,
            checkpointed_frontiers: 0,
            injected_faults: 0,
            drained_in_flight: 0,
            idle_closed: 0,
            coalesced_waiters: 0,
            coalesce_fanout_max: 0,
            shard_depths: vec![1, 1],
            cache_persist_loaded: 0,
            cache_persist_saved: 0,
            cache_persist_rejected: 0,
        };
        let text = render_prometheus(&m.snapshot(), &stats);
        let mut families: Vec<String> = Vec::new();
        let mut pending_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(
                    pending_help.is_none(),
                    "HELP for `{name}` follows an unconsumed HELP line"
                );
                pending_help = Some(name);
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap().to_string();
                let kind = parts.next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary"),
                    "unknown family type `{kind}` for `{name}`"
                );
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(name.as_str()),
                    "TYPE for `{name}` is not directly preceded by its HELP line"
                );
                assert!(!families.contains(&name), "duplicate family `{name}`");
                families.push(name);
            }
        }
        assert!(pending_help.is_none(), "trailing HELP without a TYPE line");
        // Every sample belongs to a declared family (summaries add _sum and
        // _count samples).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            let family = name.trim_end_matches("_sum").trim_end_matches("_count");
            assert!(
                families.iter().any(|f| f == name || f == family),
                "sample `{name}` has no declared family"
            );
        }
        assert!(families.iter().any(|f| f == "probterm_cache_bytes"));
    }

    #[test]
    fn ops_value_reports_percentiles_per_phase() {
        let m = ServiceMetrics::new();
        m.record(Op::Analyze, &phases(8_000), true);
        let v = ops_value(&m.snapshot());
        let analyze = v.get("analyze").unwrap();
        assert_eq!(analyze.get("requests").and_then(Value::as_u64), Some(1));
        let total = analyze.get("total_us").unwrap();
        assert!(total.get("p50").and_then(Value::as_u64).unwrap() >= 8_000);
        let engine = analyze.get("phases_us").unwrap().get("engine").unwrap();
        assert!(engine.get("p99").and_then(Value::as_u64).unwrap() >= 4_000);
    }
}
