//! Number trees and the summary semantics `→□` (paper Appendix D.1).
//!
//! The soundness proof of Theorem 5.9 decomposes the terminating traces of a
//! non-affine recursive program according to the *shape of its recursion*:
//!
//! * a **number tree** records, for every (transitive) recursive call, from
//!   how many call sites it recurses in turn;
//! * the **summary semantics** `→□` evaluates the body of the fixpoint on a
//!   trace in which every recursive call is resolved by a pre-recorded
//!   *summary* `□ʳᵣ,` ("called on `r`, returned `r'`"), so that a single level
//!   of the recursion can be examined in isolation;
//! * number trees are in bijection with the terminating runs of the shifted
//!   random walk (the maps `𝔉` and `ℌ` of Lemma D.6), and the probability a
//!   counting distribution assigns to a tree multiplies along its nodes
//!   (Definition D.3).
//!
//! These objects let the tests re-derive termination probabilities by a third,
//! independent route (besides the interval semantics and the branching-process
//! view): summing tree probabilities gives monotone lower bounds on `Pterm`.

use crate::{as_first_order_fixpoint, CountingError};
use probterm_numerics::Rational;
use probterm_rwalk::CountingDistribution;
use probterm_spcf::{Ident, Prim, Term};
use std::fmt;

// ---------------------------------------------------------------------------
// Number trees (Definition D.1)
// ---------------------------------------------------------------------------

/// A number tree `S = n ⊲ [S₁, …, Sₙ]`: every node is labelled by its number
/// of children. The node label is therefore implicit — a node with `n`
/// children *is* the label `n`.
///
/// # Examples
///
/// ```
/// use probterm_counting::NumberTree;
///
/// // The tree of Fig. 15b: 2 ⊲ [0 ⊲ [], 1 ⊲ [0 ⊲ []]].
/// let tree = NumberTree::new(vec![
///     NumberTree::leaf(),
///     NumberTree::new(vec![NumberTree::leaf()]),
/// ]);
/// assert_eq!(tree.node_count(), 4);
/// assert_eq!(tree.to_relative_run(), vec![1, -1, 0, -1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NumberTree {
    children: Vec<NumberTree>,
}

impl NumberTree {
    /// The tree `0 ⊲ []` (a run making no recursive calls).
    pub fn leaf() -> NumberTree {
        NumberTree { children: Vec::new() }
    }

    /// The tree `n ⊲ [S₁, …, Sₙ]` where `n = children.len()`.
    pub fn new(children: Vec<NumberTree>) -> NumberTree {
        NumberTree { children }
    }

    /// The label of the root: its number of children.
    pub fn label(&self) -> usize {
        self.children.len()
    }

    /// The children of the root.
    pub fn children(&self) -> &[NumberTree] {
        &self.children
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(NumberTree::node_count).sum::<usize>()
    }

    /// Height of the tree (a leaf has height one).
    pub fn height(&self) -> usize {
        1 + self.children.iter().map(NumberTree::height).max().unwrap_or(0)
    }

    /// The map `𝔉` of Lemma D.6: the preorder sequence of relative changes
    /// `label − 1`, an element of `Runs_R` (it sums to `−1` and every proper
    /// prefix sums to at least `0`).
    pub fn to_relative_run(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.node_count());
        self.push_relative(&mut out);
        out
    }

    fn push_relative(&self, out: &mut Vec<i64>) {
        out.push(self.label() as i64 - 1);
        for child in &self.children {
            child.push_relative(out);
        }
    }

    /// The inverse of [`to_relative_run`](Self::to_relative_run): rebuilds the
    /// number tree from an element of `Runs_R`, or returns `None` if the
    /// sequence is not a valid terminating run (wrong total, premature
    /// termination, or leftover suffix).
    pub fn from_relative_run(run: &[i64]) -> Option<NumberTree> {
        let (tree, used) = Self::parse_relative(run)?;
        if used == run.len() {
            Some(tree)
        } else {
            None
        }
    }

    fn parse_relative(run: &[i64]) -> Option<(NumberTree, usize)> {
        let first = *run.first()?;
        if first < -1 {
            return None;
        }
        let arity = (first + 1) as usize;
        let mut used = 1;
        let mut children = Vec::with_capacity(arity);
        for _ in 0..arity {
            let (child, n) = Self::parse_relative(&run[used..])?;
            children.push(child);
            used += n;
        }
        Some((NumberTree::new(children), used))
    }

    /// The map `ℌ ∘ 𝔉` of Lemma D.6: the absolute run of the pending-calls
    /// walk, starting at `1`, never touching `0` before the end, and ending at
    /// `0` (an element of `Runs_A`).
    pub fn to_absolute_run(&self) -> Vec<u64> {
        let mut pending: i64 = 1;
        let mut out = vec![1u64];
        for change in self.to_relative_run() {
            pending += change;
            debug_assert!(pending >= 0);
            out.push(pending as u64);
        }
        out
    }

    /// The probability `P(S)` of Definition D.3 for a single counting
    /// distribution: the product over all nodes of the probability of that
    /// node's label.
    pub fn probability(&self, counting: &CountingDistribution) -> Rational {
        let mut p = counting.probability(self.label() as u64);
        for child in &self.children {
            if p.is_zero() {
                return p;
            }
            p = p.mul_ref(&child.probability(counting));
        }
        p
    }

    /// Enumerates every number tree with at most `max_nodes` nodes whose node
    /// labels are all drawn from `degrees`. The result is duplicate-free.
    pub fn enumerate(max_nodes: usize, degrees: &[u64]) -> Vec<NumberTree> {
        let mut out = Vec::new();
        for n in 1..=max_nodes {
            out.extend(Self::enumerate_exact(n, degrees));
        }
        out
    }

    fn enumerate_exact(nodes: usize, degrees: &[u64]) -> Vec<NumberTree> {
        if nodes == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &d in degrees {
            let d = d as usize;
            if d == 0 {
                if nodes == 1 {
                    out.push(NumberTree::leaf());
                }
                continue;
            }
            if nodes < d + 1 {
                continue;
            }
            for split in compositions(nodes - 1, d) {
                let child_choices: Vec<Vec<NumberTree>> = split
                    .iter()
                    .map(|&n| Self::enumerate_exact(n, degrees))
                    .collect();
                if child_choices.iter().any(Vec::is_empty) {
                    continue;
                }
                cartesian(&child_choices, &mut |children| {
                    out.push(NumberTree::new(children.to_vec()));
                });
            }
        }
        out
    }
}

impl fmt::Display for NumberTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())?;
        if !self.children.is_empty() {
            write!(f, "⊲[")?;
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// All compositions of `total` into exactly `parts` positive summands.
fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn go(total: usize, parts: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            if total >= 1 {
                prefix.push(total);
                out.push(prefix.clone());
                prefix.pop();
            }
            return;
        }
        for first in 1..=total.saturating_sub(parts - 1) {
            prefix.push(first);
            go(total - first, parts - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    if parts >= 1 {
        go(total, parts, &mut Vec::new(), &mut out);
    }
    out
}

fn cartesian(choices: &[Vec<NumberTree>], emit: &mut impl FnMut(&[NumberTree])) {
    fn go(
        choices: &[Vec<NumberTree>],
        acc: &mut Vec<NumberTree>,
        emit: &mut impl FnMut(&[NumberTree]),
    ) {
        if choices.is_empty() {
            emit(acc);
            return;
        }
        for c in &choices[0] {
            acc.push(c.clone());
            go(&choices[1..], acc, emit);
            acc.pop();
        }
    }
    go(choices, &mut Vec::new(), emit);
}

/// The cumulative probability of Definition D.3 over every number tree with
/// at most `max_nodes` nodes — a monotone (in `max_nodes`) lower bound on the
/// termination probability of any program whose counting pattern dominates
/// `counting` pointwise (Proposition D.5 + Theorem 5.9).
pub fn tree_family_weight(counting: &CountingDistribution, max_nodes: usize) -> Rational {
    let degrees: Vec<u64> = counting.iter().map(|(n, _)| n).collect();
    NumberTree::enumerate(max_nodes, &degrees)
        .iter()
        .map(|t| t.probability(counting))
        .sum()
}

// ---------------------------------------------------------------------------
// Summary traces and the →□ reduction (Fig. 16)
// ---------------------------------------------------------------------------

/// One entry of a summary trace: either a recorded random sample or a summary
/// `□ʳᵣ,` pre-determining the argument and result of one recursive call.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryEntry {
    /// The outcome of one `sample` statement.
    Sample(Rational),
    /// A summary `□ʳᵣ,`: the next recursive call must be on `argument` and
    /// returns `result`.
    Call {
        /// The argument the recursive call is made on.
        argument: Rational,
        /// The value the recursive call is assumed to return.
        result: Rational,
    },
}

/// The outcome of a `→□` run (Fig. 16).
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryOutcome {
    /// The body evaluated to the numeral `result`, consuming the recorded
    /// summaries in order.
    Terminated {
        /// Final value of the body.
        result: Rational,
        /// Number of summaries consumed (= recursive calls made).
        calls: usize,
        /// Total number of trace entries consumed.
        consumed: usize,
    },
    /// The reduction got stuck: trace exhausted, a summary argument mismatch,
    /// a failing `score`, or a type error.
    Stuck {
        /// Human-readable reason, for diagnostics.
        reason: String,
    },
    /// The step budget was exhausted.
    OutOfFuel,
}

impl SummaryOutcome {
    /// Returns `true` for [`SummaryOutcome::Terminated`].
    pub fn is_terminated(&self) -> bool {
        matches!(self, SummaryOutcome::Terminated { .. })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum STerm {
    Mu,
    Var(Ident),
    Num(Rational),
    Lam(Ident, Box<STerm>),
    App(Box<STerm>, Box<STerm>),
    If(Box<STerm>, Box<STerm>, Box<STerm>),
    Prim(Prim, Vec<STerm>),
    Sample,
    Score(Box<STerm>),
}

impl STerm {
    fn embed(t: &Term, phi: &Ident, x: &Ident, argument: &Rational) -> STerm {
        match t {
            Term::Var(y) if y == phi => STerm::Mu,
            Term::Var(y) if y == x => STerm::Num(argument.clone()),
            Term::Var(y) => STerm::Var(y.clone()),
            Term::Num(r) => STerm::Num(r.clone()),
            Term::Lam(y, b) => {
                let phi2 = if y == phi { probterm_spcf::ident("#shadow-phi") } else { phi.clone() };
                let x2 = if y == x { probterm_spcf::ident("#shadow-x") } else { x.clone() };
                STerm::Lam(y.clone(), Box::new(STerm::embed(b, &phi2, &x2, argument)))
            }
            Term::Fix(_, _, _) => unreachable!("nested recursion excluded by shape check"),
            Term::App(f, a) => STerm::App(
                Box::new(STerm::embed(f, phi, x, argument)),
                Box::new(STerm::embed(a, phi, x, argument)),
            ),
            Term::If(g, a, b) => STerm::If(
                Box::new(STerm::embed(g, phi, x, argument)),
                Box::new(STerm::embed(a, phi, x, argument)),
                Box::new(STerm::embed(b, phi, x, argument)),
            ),
            Term::Prim(p, args) => {
                STerm::Prim(*p, args.iter().map(|a| STerm::embed(a, phi, x, argument)).collect())
            }
            Term::Sample => STerm::Sample,
            Term::Score(m) => STerm::Score(Box::new(STerm::embed(m, phi, x, argument))),
        }
    }

    fn is_value(&self) -> bool {
        matches!(self, STerm::Mu | STerm::Var(_) | STerm::Num(_) | STerm::Lam(_, _))
    }

    fn subst(&self, x: &Ident, replacement: &STerm) -> STerm {
        match self {
            STerm::Var(y) => {
                if y == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            STerm::Mu | STerm::Num(_) | STerm::Sample => self.clone(),
            STerm::Lam(y, b) => {
                if y == x {
                    self.clone()
                } else {
                    STerm::Lam(y.clone(), Box::new(b.subst(x, replacement)))
                }
            }
            STerm::App(f, a) => {
                STerm::App(Box::new(f.subst(x, replacement)), Box::new(a.subst(x, replacement)))
            }
            STerm::If(g, a, b) => STerm::If(
                Box::new(g.subst(x, replacement)),
                Box::new(a.subst(x, replacement)),
                Box::new(b.subst(x, replacement)),
            ),
            STerm::Prim(p, args) => {
                STerm::Prim(*p, args.iter().map(|a| a.subst(x, replacement)).collect())
            }
            STerm::Score(m) => STerm::Score(Box::new(m.subst(x, replacement))),
        }
    }
}

/// Runs the summary reduction `→□` of Fig. 16 on `body(argument)` against the
/// given summary trace, under call-by-value evaluation (the strategy used
/// throughout §5).
///
/// Recursive calls consume [`SummaryEntry::Call`] entries: the recorded
/// argument must equal the actual argument of the call, and the recorded
/// result is substituted for the call. `sample` consumes
/// [`SummaryEntry::Sample`] entries.
///
/// # Errors
///
/// Returns [`CountingError::NotFirstOrderFixpoint`] if `term` is not of the
/// shape `μφ x. M` accepted by the counting analysis.
pub fn summary_run(
    term: &Term,
    argument: &Rational,
    trace: &[SummaryEntry],
    max_steps: usize,
) -> Result<SummaryOutcome, CountingError> {
    let (phi, x, body) = as_first_order_fixpoint(term)?;
    let mut current = STerm::embed(body, phi, x, argument);
    let mut position = 0usize;
    let mut calls = 0usize;
    for _ in 0..max_steps {
        if let STerm::Num(r) = &current {
            return Ok(SummaryOutcome::Terminated { result: r.clone(), calls, consumed: position });
        }
        if current.is_value() {
            return Ok(SummaryOutcome::Stuck {
                reason: "evaluated to a non-numeral value".into(),
            });
        }
        match summary_step(current, trace, &mut position, &mut calls) {
            Ok(next) => current = next,
            Err(reason) => return Ok(SummaryOutcome::Stuck { reason }),
        }
    }
    Ok(SummaryOutcome::OutOfFuel)
}

fn summary_step(
    term: STerm,
    trace: &[SummaryEntry],
    position: &mut usize,
    calls: &mut usize,
) -> Result<STerm, String> {
    enum Frame {
        AppFun(STerm),
        AppArg(STerm),
        If(STerm, STerm),
        Score,
        Prim(Prim, Vec<STerm>, Vec<STerm>),
    }
    fn plug(frames: Vec<Frame>, mut t: STerm) -> STerm {
        for frame in frames.into_iter().rev() {
            t = match frame {
                Frame::AppFun(arg) => STerm::App(Box::new(t), Box::new(arg)),
                Frame::AppArg(fun) => STerm::App(Box::new(fun), Box::new(t)),
                Frame::If(a, b) => STerm::If(Box::new(t), Box::new(a), Box::new(b)),
                Frame::Score => STerm::Score(Box::new(t)),
                Frame::Prim(p, mut prefix, suffix) => {
                    prefix.push(t);
                    prefix.extend(suffix);
                    STerm::Prim(p, prefix)
                }
            };
        }
        t
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut current = term;
    loop {
        match current {
            STerm::App(fun, arg) => {
                if !fun.is_value() {
                    frames.push(Frame::AppFun(*arg));
                    current = *fun;
                } else if !arg.is_value() {
                    frames.push(Frame::AppArg(*fun));
                    current = *arg;
                } else {
                    match *fun {
                        STerm::Lam(ref y, ref body) => return Ok(plug(frames, body.subst(y, &arg))),
                        STerm::Mu => {
                            let STerm::Num(actual) = *arg else {
                                return Err("recursive call on a non-numeral argument".into());
                            };
                            let entry = trace.get(*position).cloned();
                            *position += 1;
                            match entry {
                                Some(SummaryEntry::Call { argument, result }) => {
                                    if argument != actual {
                                        return Err(format!(
                                            "summary argument mismatch: recorded {argument}, actual {actual}"
                                        ));
                                    }
                                    *calls += 1;
                                    return Ok(plug(frames, STerm::Num(result)));
                                }
                                Some(SummaryEntry::Sample(_)) => {
                                    return Err("expected a summary, found a sample entry".into())
                                }
                                None => return Err("summary trace exhausted at a recursive call".into()),
                            }
                        }
                        _ => return Err("application of a non-function value".into()),
                    }
                }
            }
            STerm::If(guard, then, els) => match *guard {
                STerm::Num(ref r) => {
                    let taken = if r.is_positive() { *els } else { *then };
                    return Ok(plug(frames, taken));
                }
                ref g if g.is_value() => return Err("conditional guard is not a numeral".into()),
                _ => {
                    frames.push(Frame::If(*then, *els));
                    current = *guard;
                }
            },
            STerm::Score(inner) => match *inner {
                STerm::Num(r) => {
                    if r.is_negative() {
                        return Err("score on a negative value".into());
                    }
                    return Ok(plug(frames, STerm::Num(r)));
                }
                ref m if m.is_value() => return Err("score argument is not a numeral".into()),
                _ => {
                    frames.push(Frame::Score);
                    current = *inner;
                }
            },
            STerm::Sample => {
                let entry = trace.get(*position).cloned();
                *position += 1;
                match entry {
                    Some(SummaryEntry::Sample(r)) => return Ok(plug(frames, STerm::Num(r))),
                    Some(SummaryEntry::Call { .. }) => {
                        return Err("expected a sample entry, found a summary".into())
                    }
                    None => return Err("summary trace exhausted at a sample".into()),
                }
            }
            STerm::Prim(p, mut args) => {
                if args.iter().all(STerm::is_value) {
                    let values: Option<Vec<Rational>> = args
                        .iter()
                        .map(|a| match a {
                            STerm::Num(r) => Some(r.clone()),
                            _ => None,
                        })
                        .collect();
                    let Some(values) = values else {
                        return Err("primitive applied to a non-numeral".into());
                    };
                    return match p.eval(&values) {
                        Some(r) => Ok(plug(frames, STerm::Num(r))),
                        None => Err("primitive domain error".into()),
                    };
                }
                let i = args.iter().position(|a| !a.is_value()).expect("non-value argument");
                let suffix = args.split_off(i + 1);
                let focus = args.pop().expect("argument at position i");
                frames.push(Frame::Prim(p, args, suffix));
                current = focus;
            }
            STerm::Var(_) | STerm::Num(_) | STerm::Lam(_, _) | STerm::Mu => {
                return Err("reached a value inside the step function".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::{catalog, parse_term};

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    /// The catalogue stores benchmarks as `(fix …) argument`; the counting
    /// analyses work on the bare fixpoint, as elsewhere in this crate.
    fn fixpoint_of(term: &Term) -> Term {
        match term {
            Term::App(f, _) if matches!(**f, Term::Fix(_, _, _)) => (**f).clone(),
            other => other.clone(),
        }
    }

    fn fig15b() -> NumberTree {
        NumberTree::new(vec![NumberTree::leaf(), NumberTree::new(vec![NumberTree::leaf()])])
    }

    fn fig15c() -> NumberTree {
        NumberTree::new(vec![NumberTree::new(vec![NumberTree::leaf()]), NumberTree::leaf()])
    }

    #[test]
    fn figure_15_trees_are_distinct_and_have_four_nodes() {
        let b = fig15b();
        let c = fig15c();
        assert_ne!(b, c);
        assert_eq!(b.node_count(), 4);
        assert_eq!(c.node_count(), 4);
        assert_eq!(b.height(), 3);
        assert_eq!(b.label(), 2);
        assert_eq!(b.children().len(), 2);
        assert_eq!(b.to_string(), "2⊲[0, 1⊲[0]]");
    }

    #[test]
    fn relative_runs_satisfy_the_runs_r_invariants() {
        for tree in [NumberTree::leaf(), fig15b(), fig15c()] {
            let run = tree.to_relative_run();
            assert_eq!(run.iter().sum::<i64>(), -1, "total change is -1");
            let mut acc = 0i64;
            for (i, change) in run.iter().enumerate() {
                acc += change;
                if i + 1 < run.len() {
                    assert!(acc >= 0, "proper prefixes never go negative");
                }
            }
            assert_eq!(acc, -1);
        }
    }

    #[test]
    fn absolute_runs_start_at_one_and_end_at_zero() {
        for tree in [NumberTree::leaf(), fig15b(), fig15c()] {
            let run = tree.to_absolute_run();
            assert_eq!(*run.first().unwrap(), 1);
            assert_eq!(*run.last().unwrap(), 0);
            assert!(run[1..run.len() - 1].iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn relative_run_bijection_round_trips() {
        let degrees = [0u64, 2, 3];
        for tree in NumberTree::enumerate(7, &degrees) {
            let run = tree.to_relative_run();
            assert_eq!(NumberTree::from_relative_run(&run), Some(tree));
        }
        // Invalid runs are rejected: wrong total, premature zero, leftover tail.
        assert_eq!(NumberTree::from_relative_run(&[]), None);
        assert_eq!(NumberTree::from_relative_run(&[0]), None);
        assert_eq!(NumberTree::from_relative_run(&[-1, -1]), None);
        assert_eq!(NumberTree::from_relative_run(&[1, -1]), None);
        assert_eq!(NumberTree::from_relative_run(&[-2]), None);
    }

    #[test]
    fn enumeration_is_duplicate_free_and_counts_binary_trees() {
        // Full binary trees with k internal nodes: Catalan(k); node counts 1, 3, 5, 7.
        let trees = NumberTree::enumerate(7, &[0, 2]);
        let mut seen = std::collections::HashSet::new();
        for t in &trees {
            assert!(seen.insert(t.clone()), "duplicate tree {t}");
        }
        let by_size = |n: usize| trees.iter().filter(|t| t.node_count() == n).count();
        assert_eq!(by_size(1), 1);
        assert_eq!(by_size(3), 1);
        assert_eq!(by_size(5), 2);
        assert_eq!(by_size(7), 5);
    }

    #[test]
    fn example_d_4_tree_probability() {
        // Counting distribution of Ex. D.1/D.4: t(0) = 1/4, t(1) = 1/4, t(2) = 1/2.
        let t = CountingDistribution::from_pairs([(0, r(1, 4)), (1, r(1, 4)), (2, r(1, 2))]);
        // The tree of Fig. 15b has probability 1/2 · 1/4 · 1/4 · 1/4 = 1/128.
        assert_eq!(fig15b().probability(&t), r(1, 128));
        assert_eq!(fig15c().probability(&t), r(1, 128));
        assert_eq!(NumberTree::leaf().probability(&t), r(1, 4));
        // A tree using a label outside the support has probability zero.
        let ternary = NumberTree::new(vec![NumberTree::leaf(), NumberTree::leaf(), NumberTree::leaf()]);
        assert_eq!(ternary.probability(&t), Rational::zero());
    }

    #[test]
    fn tree_family_weight_lower_bounds_the_extinction_probability() {
        // Ex. 1.1 (2) with p = 3/4 (AST): tree weights approach 1.
        let ast = CountingDistribution::from_pairs([(0, r(3, 4)), (2, r(1, 4))]);
        let w5 = tree_family_weight(&ast, 5);
        let w9 = tree_family_weight(&ast, 9);
        assert!(w5 < w9, "weights are monotone in the node budget");
        assert!(w9 > r(9, 10), "AST program: weights approach 1, got {w9}");
        assert!(w9 < Rational::one());
        // p = 1/4 (not AST): weights approach the extinction probability 1/3.
        let not_ast = CountingDistribution::from_pairs([(0, r(1, 4)), (2, r(3, 4))]);
        let w = tree_family_weight(&not_ast, 11);
        assert!(w < r(1, 3));
        assert!(w > r(3, 10), "lower bounds converge towards 1/3, got {w}");
    }

    #[test]
    fn summary_run_on_the_affine_printer() {
        // Ex. 1.1 (1), p = 1/2: success branch makes no recursive call.
        let term = fixpoint_of(&catalog::printer_affine(r(1, 2)).term);
        let ok = summary_run(&term, &r(1, 1), &[SummaryEntry::Sample(r(3, 10))], 1_000).unwrap();
        assert_eq!(
            ok,
            SummaryOutcome::Terminated { result: r(1, 1), calls: 0, consumed: 1 }
        );
        // Failure branch: one recursive call on x + 1 = 2, summarised to return 7.
        let fail = summary_run(
            &term,
            &r(1, 1),
            &[
                SummaryEntry::Sample(r(9, 10)),
                SummaryEntry::Call { argument: r(2, 1), result: r(7, 1) },
            ],
            1_000,
        )
        .unwrap();
        assert_eq!(
            fail,
            SummaryOutcome::Terminated { result: r(7, 1), calls: 1, consumed: 2 }
        );
    }

    #[test]
    fn summary_run_on_the_nonaffine_printer_consumes_two_summaries() {
        // Ex. 1.1 (2): φ(φ(x + 1)); inner call on 2, outer call on whatever the
        // inner returned.
        let term = fixpoint_of(&catalog::printer_nonaffine(r(1, 2)).term);
        let outcome = summary_run(
            &term,
            &r(1, 1),
            &[
                SummaryEntry::Sample(r(9, 10)),
                SummaryEntry::Call { argument: r(2, 1), result: r(5, 1) },
                SummaryEntry::Call { argument: r(5, 1), result: r(11, 1) },
            ],
            1_000,
        )
        .unwrap();
        assert_eq!(
            outcome,
            SummaryOutcome::Terminated { result: r(11, 1), calls: 2, consumed: 3 }
        );
    }

    #[test]
    fn summary_mismatch_and_exhaustion_are_stuck() {
        let term = fixpoint_of(&catalog::printer_nonaffine(r(1, 2)).term);
        // Wrong recorded argument for the inner call.
        let mismatch = summary_run(
            &term,
            &r(1, 1),
            &[
                SummaryEntry::Sample(r(9, 10)),
                SummaryEntry::Call { argument: r(3, 1), result: r(5, 1) },
            ],
            1_000,
        )
        .unwrap();
        assert!(matches!(mismatch, SummaryOutcome::Stuck { ref reason } if reason.contains("mismatch")));
        // Trace too short.
        let short = summary_run(&term, &r(1, 1), &[SummaryEntry::Sample(r(9, 10))], 1_000).unwrap();
        assert!(matches!(short, SummaryOutcome::Stuck { ref reason } if reason.contains("exhausted")));
        // Sample where a summary is expected.
        let wrong_kind = summary_run(
            &term,
            &r(1, 1),
            &[SummaryEntry::Sample(r(9, 10)), SummaryEntry::Sample(r(1, 10))],
            1_000,
        )
        .unwrap();
        assert!(matches!(wrong_kind, SummaryOutcome::Stuck { .. }));
        assert!(!wrong_kind.is_terminated());
    }

    #[test]
    fn summary_run_rejects_non_fixpoints() {
        let term = parse_term("sample + 1").unwrap();
        assert_eq!(
            summary_run(&term, &Rational::zero(), &[], 10).unwrap_err(),
            CountingError::NotFirstOrderFixpoint
        );
    }

    #[test]
    fn summary_run_out_of_fuel() {
        let term = fixpoint_of(&catalog::printer_affine(r(1, 2)).term);
        let outcome =
            summary_run(&term, &r(1, 1), &[SummaryEntry::Sample(r(3, 10))], 1).unwrap();
        assert_eq!(outcome, SummaryOutcome::OutOfFuel);
    }
}
