//! Counting-based recursion analysis (paper §5.2–§5.4, App. D.3–D.4).
//!
//! For a first-order fixpoint program `μφ x. M` (call-by-value, no nested
//! recursion) this crate provides:
//!
//! * the **★-reduction** of Fig. 5 — evaluation of the instantiated body
//!   `body(r) = M[r/x, μ/φ]` in which the outcome of every recursive call is
//!   replaced by the unknown numeral ★ while the number of calls is counted;
//! * **empirical counting patterns** `⦃μφ x.M | r⦄` (Definition 5.7) obtained
//!   by Monte-Carlo sampling of the ★-reduction, used to cross-validate the
//!   exact `P_approx` computed by the `probterm-astver` crate;
//! * the **recursive-rank upper bound** via a non-idempotent-intersection-style
//!   call-site count (Lemma D.9), feeding Corollary 5.13;
//! * the **guard-independence (progress) type system** of App. D.3 with the
//!   restricted type `R⊤` for recursive outcomes, which guarantees that the
//!   ★-reduction never gets stuck on `if(★, …)` or `score(★)`.

#![warn(missing_docs)]

mod summary;

pub use summary::{
    summary_run, tree_family_weight, NumberTree, SummaryEntry, SummaryOutcome,
};

use probterm_numerics::Rational;
use probterm_rwalk::CountingDistribution;
use probterm_spcf::{ident, Ident, Prim, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Errors reported by the counting analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountingError {
    /// The term is not of the shape `μφ x. M` with first-order type and no
    /// nested recursion (required by §5.2).
    NotFirstOrderFixpoint,
    /// The guard-independence type system rejected the body.
    GuardDependsOnRecursion(String),
}

impl fmt::Display for CountingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountingError::NotFirstOrderFixpoint => {
                write!(f, "expected a first-order fixpoint μφ x. M without nested recursion")
            }
            CountingError::GuardDependsOnRecursion(what) => {
                write!(f, "recursive outcome may influence control flow: {what}")
            }
        }
    }
}

impl std::error::Error for CountingError {}

/// Checks the program shape required by the counting analysis and returns the
/// binder names and body.
///
/// # Errors
///
/// Returns [`CountingError::NotFirstOrderFixpoint`] on other terms.
pub fn as_first_order_fixpoint(term: &Term) -> Result<(&Ident, &Ident, &Term), CountingError> {
    if !probterm_spcf::is_first_order_fixpoint(term) {
        return Err(CountingError::NotFirstOrderFixpoint);
    }
    match term {
        Term::Fix(phi, x, body) => Ok((phi, x, body)),
        _ => Err(CountingError::NotFirstOrderFixpoint),
    }
}

// ---------------------------------------------------------------------------
// The ★-reduction (Fig. 5)
// ---------------------------------------------------------------------------

/// Terms of the ★-instrumented calculus: SPCF plus the unknown numeral `★`
/// and the recursion marker `μ`.
#[derive(Debug, Clone, PartialEq)]
enum StarTerm {
    Star,
    RecMarker,
    Var(Ident),
    Num(Rational),
    Lam(Ident, Box<StarTerm>),
    App(Box<StarTerm>, Box<StarTerm>),
    If(Box<StarTerm>, Box<StarTerm>, Box<StarTerm>),
    Prim(Prim, Vec<StarTerm>),
    Sample,
    Score(Box<StarTerm>),
}

impl StarTerm {
    /// Builds `body(r) = M[r/x, μ/φ]` as a ★-term.
    fn instantiate(body: &Term, phi: &Ident, x: &Ident, argument: &Rational) -> StarTerm {
        fn embed(t: &Term, phi: &Ident, x: &Ident, argument: &Rational) -> StarTerm {
            match t {
                Term::Var(y) if y == phi => StarTerm::RecMarker,
                Term::Var(y) if y == x => StarTerm::Num(argument.clone()),
                Term::Var(y) => StarTerm::Var(y.clone()),
                Term::Num(r) => StarTerm::Num(r.clone()),
                Term::Lam(y, b) => {
                    // A binder shadowing the fixpoint binders stops the substitution.
                    let inner_phi = if y == phi { ident("#shadowed-phi") } else { phi.clone() };
                    let inner_x = if y == x { ident("#shadowed-x") } else { x.clone() };
                    StarTerm::Lam(y.clone(), Box::new(embed(b, &inner_phi, &inner_x, argument)))
                }
                Term::Fix(_, _, _) => {
                    unreachable!("nested recursion is excluded by as_first_order_fixpoint")
                }
                Term::App(f, a) => StarTerm::App(
                    Box::new(embed(f, phi, x, argument)),
                    Box::new(embed(a, phi, x, argument)),
                ),
                Term::If(g, t1, t2) => StarTerm::If(
                    Box::new(embed(g, phi, x, argument)),
                    Box::new(embed(t1, phi, x, argument)),
                    Box::new(embed(t2, phi, x, argument)),
                ),
                Term::Prim(p, args) => StarTerm::Prim(
                    *p,
                    args.iter().map(|a| embed(a, phi, x, argument)).collect(),
                ),
                Term::Sample => StarTerm::Sample,
                Term::Score(m) => StarTerm::Score(Box::new(embed(m, phi, x, argument))),
            }
        }
        embed(body, phi, x, argument)
    }

    fn is_value(&self) -> bool {
        matches!(
            self,
            StarTerm::Star
                | StarTerm::RecMarker
                | StarTerm::Var(_)
                | StarTerm::Num(_)
                | StarTerm::Lam(_, _)
        )
    }

    fn subst(&self, x: &Ident, replacement: &StarTerm) -> StarTerm {
        match self {
            StarTerm::Var(y) => {
                if y == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            StarTerm::Star | StarTerm::RecMarker | StarTerm::Num(_) | StarTerm::Sample => {
                self.clone()
            }
            StarTerm::Lam(y, b) => {
                if y == x {
                    self.clone()
                } else {
                    StarTerm::Lam(y.clone(), Box::new(b.subst(x, replacement)))
                }
            }
            StarTerm::App(f, a) => StarTerm::App(
                Box::new(f.subst(x, replacement)),
                Box::new(a.subst(x, replacement)),
            ),
            StarTerm::If(g, t, e) => StarTerm::If(
                Box::new(g.subst(x, replacement)),
                Box::new(t.subst(x, replacement)),
                Box::new(e.subst(x, replacement)),
            ),
            StarTerm::Prim(p, args) => {
                StarTerm::Prim(*p, args.iter().map(|a| a.subst(x, replacement)).collect())
            }
            StarTerm::Score(m) => StarTerm::Score(Box::new(m.subst(x, replacement))),
        }
    }
}

/// The outcome of a ★-reduction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StarOutcome {
    /// The body evaluated to a value after making the given number of
    /// recursive calls from distinct call sites.
    Terminated {
        /// Number of recursive calls made.
        calls: u64,
    },
    /// The reduction got stuck (e.g. `if(★, …)`, negative `score`, domain error).
    Stuck,
    /// The step budget was exhausted.
    OutOfFuel,
}

/// Runs the ★-reduction of `body(argument)` on random samples, returning the
/// number of recursive calls made (Fig. 5 / Definition 5.7).
fn star_run<R: Rng>(
    body: &Term,
    phi: &Ident,
    x: &Ident,
    argument: &Rational,
    rng: &mut R,
    max_steps: usize,
) -> StarOutcome {
    let mut current = StarTerm::instantiate(body, phi, x, argument);
    let mut calls = 0u64;
    for _ in 0..max_steps {
        if current.is_value() {
            return StarOutcome::Terminated { calls };
        }
        match star_step(current, &mut calls, rng) {
            Ok(next) => current = next,
            Err(()) => return StarOutcome::Stuck,
        }
    }
    if current.is_value() {
        StarOutcome::Terminated { calls }
    } else {
        StarOutcome::OutOfFuel
    }
}

/// One CbV step of the ★-reduction.
fn star_step<R: Rng>(term: StarTerm, calls: &mut u64, rng: &mut R) -> Result<StarTerm, ()> {
    enum Frame {
        AppFun(StarTerm),
        AppArg(StarTerm),
        If(StarTerm, StarTerm),
        Score,
        Prim(Prim, Vec<StarTerm>, Vec<StarTerm>),
    }
    fn plug(frames: Vec<Frame>, mut t: StarTerm) -> StarTerm {
        for frame in frames.into_iter().rev() {
            t = match frame {
                Frame::AppFun(arg) => StarTerm::App(Box::new(t), Box::new(arg)),
                Frame::AppArg(fun) => StarTerm::App(Box::new(fun), Box::new(t)),
                Frame::If(a, b) => StarTerm::If(Box::new(t), Box::new(a), Box::new(b)),
                Frame::Score => StarTerm::Score(Box::new(t)),
                Frame::Prim(p, mut prefix, suffix) => {
                    prefix.push(t);
                    prefix.extend(suffix);
                    StarTerm::Prim(p, prefix)
                }
            };
        }
        t
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut current = term;
    loop {
        match current {
            StarTerm::App(fun, arg) => {
                if !fun.is_value() {
                    frames.push(Frame::AppFun(*arg));
                    current = *fun;
                } else if !arg.is_value() {
                    frames.push(Frame::AppArg(*fun));
                    current = *arg;
                } else {
                    match *fun {
                        StarTerm::Lam(ref x, ref body) => {
                            return Ok(plug(frames, body.subst(x, &arg)));
                        }
                        // ⟨μ V, s, n⟩ → ⟨★, s, n+1⟩ (Fig. 5)
                        StarTerm::RecMarker => {
                            *calls += 1;
                            return Ok(plug(frames, StarTerm::Star));
                        }
                        _ => return Err(()),
                    }
                }
            }
            StarTerm::If(guard, then, els) => match *guard {
                StarTerm::Num(ref r) => {
                    let taken = if r.is_positive() { *els } else { *then };
                    return Ok(plug(frames, taken));
                }
                // Branching on the unknown numeral ★ is stuck (the progress
                // type system of App. D.3 rules this out statically).
                StarTerm::Star => return Err(()),
                ref g if g.is_value() => return Err(()),
                _ => {
                    frames.push(Frame::If(*then, *els));
                    current = *guard;
                }
            },
            StarTerm::Score(inner) => match *inner {
                StarTerm::Num(r) => {
                    if r.is_negative() {
                        return Err(());
                    }
                    return Ok(plug(frames, StarTerm::Num(r)));
                }
                StarTerm::Star => return Err(()),
                ref m if m.is_value() => return Err(()),
                _ => {
                    frames.push(Frame::Score);
                    current = *inner;
                }
            },
            StarTerm::Sample => {
                let v: f64 = rng.gen_range(0.0..1.0);
                return Ok(plug(frames, StarTerm::Num(Rational::from_f64_exact(v))));
            }
            StarTerm::Prim(p, mut args) => {
                // ⟨f(V₁,…,★,…), s, n⟩ → ⟨★, s, n⟩: ★ is absorbing for primitives.
                if args.iter().all(StarTerm::is_value) {
                    if args.iter().any(|a| matches!(a, StarTerm::Star)) {
                        return Ok(plug(frames, StarTerm::Star));
                    }
                    let values: Option<Vec<Rational>> = args
                        .iter()
                        .map(|a| match a {
                            StarTerm::Num(r) => Some(r.clone()),
                            _ => None,
                        })
                        .collect();
                    let Some(values) = values else { return Err(()) };
                    return match p.eval(&values) {
                        Some(r) => Ok(plug(frames, StarTerm::Num(r))),
                        None => Err(()),
                    };
                }
                let i = args
                    .iter()
                    .position(|a| !a.is_value())
                    .expect("some argument is not a value");
                let suffix = args.split_off(i + 1);
                let focus = args.pop().expect("argument at position i");
                frames.push(Frame::Prim(p, args, suffix));
                current = focus;
            }
            StarTerm::Var(_)
            | StarTerm::Num(_)
            | StarTerm::Lam(_, _)
            | StarTerm::Star
            | StarTerm::RecMarker => return Err(()),
        }
    }
}

/// An empirical counting pattern obtained by Monte-Carlo sampling of the
/// ★-reduction (used to cross-validate the exact analysis of `probterm-astver`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalCountingPattern {
    /// Number of runs performed.
    pub runs: usize,
    /// Number of runs that got stuck or ran out of fuel.
    pub failed_runs: usize,
    /// Histogram of call counts over successful runs.
    pub histogram: BTreeMap<u64, usize>,
}

impl EmpiricalCountingPattern {
    /// The empirical probability of making exactly `n` recursive calls.
    pub fn frequency(&self, n: u64) -> f64 {
        *self.histogram.get(&n).unwrap_or(&0) as f64 / self.runs as f64
    }

    /// Converts the histogram into a [`CountingDistribution`] with rational
    /// frequencies `count / runs`.
    pub fn to_distribution(&self) -> CountingDistribution {
        CountingDistribution::from_pairs(
            self.histogram
                .iter()
                .map(|(n, c)| (*n, Rational::from_ratio(*c as i64, self.runs as i64))),
        )
    }

    /// The largest observed call count.
    pub fn max_calls(&self) -> Option<u64> {
        self.histogram.keys().next_back().copied()
    }
}

/// Estimates the counting pattern `⦃μφ x.M | argument⦄` of Definition 5.7 by
/// running the ★-reduction `runs` times on uniformly random traces.
///
/// # Errors
///
/// Returns an error if the term is not a first-order fixpoint.
pub fn empirical_counting_pattern(
    term: &Term,
    argument: &Rational,
    runs: usize,
    seed: u64,
) -> Result<EmpiricalCountingPattern, CountingError> {
    let (phi, x, body) = as_first_order_fixpoint(term)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut histogram: BTreeMap<u64, usize> = BTreeMap::new();
    let mut failed = 0usize;
    for _ in 0..runs {
        match star_run(body, phi, x, argument, &mut rng, 100_000) {
            StarOutcome::Terminated { calls } => *histogram.entry(calls).or_insert(0) += 1,
            StarOutcome::Stuck | StarOutcome::OutOfFuel => failed += 1,
        }
    }
    Ok(EmpiricalCountingPattern {
        runs,
        failed_runs: failed,
        histogram,
    })
}

// ---------------------------------------------------------------------------
// Recursive rank (§5.4, App. D.4)
// ---------------------------------------------------------------------------

/// An upper bound on the *recursive rank* of a first-order fixpoint: the
/// maximal number of call sites from which recursive calls are made in any
/// single evaluation of the body.
///
/// The bound is the one delivered by the non-idempotent intersection type
/// system of App. D.4 specialised to first-order bodies: along any control
/// path the number of applications of `φ` is counted, conditionals take the
/// maximum over their branches, and all other constructs sum the counts of
/// their subterms.
///
/// # Errors
///
/// Returns an error if the term is not a first-order fixpoint.
pub fn recursive_rank_bound(term: &Term) -> Result<u64, CountingError> {
    let (phi, _x, body) = as_first_order_fixpoint(term)?;
    Ok(count_calls(body, phi))
}

fn count_calls(term: &Term, phi: &Ident) -> u64 {
    match term {
        Term::Var(_) | Term::Num(_) | Term::Sample => 0,
        Term::App(f, a) => {
            let base = count_calls(f, phi) + count_calls(a, phi);
            if matches!(&**f, Term::Var(y) if y == phi) {
                base + 1
            } else {
                base
            }
        }
        Term::If(g, t, e) => count_calls(g, phi) + count_calls(t, phi).max(count_calls(e, phi)),
        Term::Prim(_, args) => args.iter().map(|a| count_calls(a, phi)).sum(),
        Term::Score(m) => count_calls(m, phi),
        Term::Lam(y, b) => {
            if y == phi {
                0
            } else {
                count_calls(b, phi)
            }
        }
        Term::Fix(p, y, b) => {
            if p == phi || y == phi {
                0
            } else {
                count_calls(b, phi)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Guard independence / progress type system (App. D.3)
// ---------------------------------------------------------------------------

/// The simple types of the progress system: `R`, the restricted `R⊤` of
/// recursive outcomes, and arrows.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PTy {
    Real,
    RealTop,
    Arrow(Box<PTy>, Box<PTy>),
}

/// Checks the guard-independence property of App. D.3: in the body of the
/// fixpoint, the outcome of a recursive call (type `R⊤`) never flows into the
/// guard of a conditional or the argument of `score`.
///
/// This is a sound, syntax-directed implementation of the type system of
/// Fig. 17: a term is assigned `R⊤` as soon as a recursive outcome may reach
/// it, and guards / score arguments are required to have the unrestricted
/// type `R`.
///
/// # Errors
///
/// Returns an error describing the offending construct, or
/// [`CountingError::NotFirstOrderFixpoint`] for other terms.
pub fn check_guard_independence(term: &Term) -> Result<(), CountingError> {
    let (phi, x, body) = as_first_order_fixpoint(term)?;
    let mut env: Vec<(Ident, PTy)> = vec![
        (
            phi.clone(),
            PTy::Arrow(Box::new(PTy::RealTop), Box::new(PTy::RealTop)),
        ),
        (x.clone(), PTy::Real),
    ];
    infer_p(body, &mut env).map(|_| ())
}

fn infer_p(term: &Term, env: &mut Vec<(Ident, PTy)>) -> Result<PTy, CountingError> {
    match term {
        Term::Num(_) | Term::Sample => Ok(PTy::Real),
        Term::Var(y) => env
            .iter()
            .rev()
            .find(|(name, _)| name == y)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| CountingError::GuardDependsOnRecursion(format!("unbound variable {y}"))),
        Term::Lam(y, b) => {
            // The argument of a locally defined function may receive a
            // recursive outcome, so it is conservatively typed R⊤ (R ⊑ R⊤).
            env.push((y.clone(), PTy::RealTop));
            let result = infer_p(b, env)?;
            env.pop();
            Ok(PTy::Arrow(Box::new(PTy::RealTop), Box::new(result)))
        }
        Term::Fix(_, _, _) => Err(CountingError::NotFirstOrderFixpoint),
        Term::App(f, a) => {
            // `let`-style redexes (λy. body) arg are typed precisely: the bound
            // variable gets the type of the argument, so e.g. `let e = sample in
            // if e ≤ p …` (Ex. 5.15) is accepted.
            if let Term::Lam(y, body) = &**f {
                let a_ty = infer_p(a, env)?;
                env.push((y.clone(), a_ty));
                let result = infer_p(body, env)?;
                env.pop();
                return Ok(result);
            }
            let f_ty = infer_p(f, env)?;
            let _a_ty = infer_p(a, env)?;
            match f_ty {
                PTy::Arrow(_, result) => Ok(*result),
                PTy::Real | PTy::RealTop => Err(CountingError::GuardDependsOnRecursion(
                    "application of a base-type value".into(),
                )),
            }
        }
        Term::If(g, t, e) => {
            let g_ty = infer_p(g, env)?;
            if g_ty != PTy::Real {
                return Err(CountingError::GuardDependsOnRecursion(format!(
                    "conditional guard `{g}` may depend on a recursive outcome"
                )));
            }
            let t_ty = infer_p(t, env)?;
            let e_ty = infer_p(e, env)?;
            Ok(join(t_ty, e_ty))
        }
        Term::Prim(_, args) => {
            let mut tainted = false;
            for a in args {
                match infer_p(a, env)? {
                    PTy::Real => {}
                    PTy::RealTop => tainted = true,
                    PTy::Arrow(_, _) => {
                        return Err(CountingError::GuardDependsOnRecursion(
                            "function used as primitive argument".into(),
                        ))
                    }
                }
            }
            Ok(if tainted { PTy::RealTop } else { PTy::Real })
        }
        Term::Score(m) => {
            let ty = infer_p(m, env)?;
            if ty != PTy::Real {
                return Err(CountingError::GuardDependsOnRecursion(format!(
                    "score argument `{m}` may depend on a recursive outcome"
                )));
            }
            Ok(PTy::Real)
        }
    }
}

fn join(a: PTy, b: PTy) -> PTy {
    match (a, b) {
        (PTy::Real, PTy::Real) => PTy::Real,
        (PTy::Arrow(a1, b1), PTy::Arrow(_, b2)) => PTy::Arrow(a1, Box::new(join(*b1, *b2))),
        _ => PTy::RealTop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    fn fixpoint_of(src: &str) -> Term {
        // Strip an application "(...fix...) arg" down to the fixpoint itself.
        match parse_term(src).unwrap() {
            Term::App(f, _) => *f,
            other => other,
        }
    }

    #[test]
    fn shape_check_accepts_and_rejects() {
        let ok = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (x+1)) 0");
        assert!(as_first_order_fixpoint(&ok).is_ok());
        assert_eq!(
            as_first_order_fixpoint(&Term::int(1)),
            Err(CountingError::NotFirstOrderFixpoint)
        );
        let higher = parse_term("fix phi x. lam d. phi x d").unwrap();
        assert_eq!(
            as_first_order_fixpoint(&higher),
            Err(CountingError::NotFirstOrderFixpoint)
        );
    }

    #[test]
    fn recursive_rank_bounds_match_the_paper() {
        // Ex. 1.1 (1): affine, rank 1.
        let affine = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (x+1)) 1");
        assert_eq!(recursive_rank_bound(&affine), Ok(1));
        // Ex. 1.1 (2): rank 2.
        let two = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (phi (x+1))) 1");
        assert_eq!(recursive_rank_bound(&two), Ok(2));
        // 3print: rank 3.
        let three = fixpoint_of("(fix phi x. if sample <= 2/3 then x else phi (phi (phi (x+1)))) 1");
        assert_eq!(recursive_rank_bound(&three), Ok(3));
        // Ex. 5.1: rank 3 — the max is over branches, not the sum.
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let Term::App(fix, _) = b.term else { panic!() };
        assert_eq!(recursive_rank_bound(&fix), Ok(3));
        // Conditional branches take the maximum.
        let branchy = fixpoint_of("(fix phi x. if sample <= 1/2 then phi x else phi (phi x)) 0");
        assert_eq!(recursive_rank_bound(&branchy), Ok(2));
    }

    #[test]
    fn rank_plus_epsilon_gives_cor_5_13() {
        use probterm_rwalk::epsilon_ra_implies_ast;
        let two = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (phi (x+1))) 1");
        let rank = recursive_rank_bound(&two).unwrap();
        // ε = p = 1/2 here, so rank·(1-ε) = 1 ≤ 1: AST (Ex. 5.14).
        assert!(epsilon_ra_implies_ast(rank, &Rational::from_ratio(1, 2)));
        assert!(!epsilon_ra_implies_ast(rank, &Rational::from_ratio(2, 5)));
    }

    #[test]
    fn empirical_counting_patterns_match_example_5_8() {
        // Ex. 1.1 (2) with p = 1/2: ⦃⦄(0) = 1/2, ⦃⦄(2) = 1/2.
        let two = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (phi (x+1))) 1");
        let pattern = empirical_counting_pattern(&two, &Rational::one(), 4_000, 11).unwrap();
        assert_eq!(pattern.failed_runs, 0);
        assert!((pattern.frequency(0) - 0.5).abs() < 0.05);
        assert!((pattern.frequency(2) - 0.5).abs() < 0.05);
        assert_eq!(pattern.frequency(1), 0.0);
        assert_eq!(pattern.max_calls(), Some(2));
        // Ex. 5.1 with p = 0.6 and argument 1: frequencies follow Ex. 5.8 with sig(1).
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let Term::App(fix, _) = b.term else { panic!() };
        let pattern = empirical_counting_pattern(&fix, &Rational::from_int(1), 6_000, 23).unwrap();
        let sig_r = 1.0 / (1.0 + (-1.0f64).exp());
        assert!((pattern.frequency(0) - 0.6).abs() < 0.05);
        assert!((pattern.frequency(2) - 0.4 * 0.5 * (2.0 - sig_r)).abs() < 0.05);
        assert!((pattern.frequency(3) - 0.4 * 0.5 * sig_r).abs() < 0.05);
        // The empirical distribution is a genuine counting distribution.
        let dist = pattern.to_distribution();
        assert!(dist.total_mass() <= Rational::one());
    }

    #[test]
    fn counting_pattern_of_affine_printer_is_bernoulli() {
        let affine = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (x+1)) 1");
        let pattern = empirical_counting_pattern(&affine, &Rational::one(), 3_000, 5).unwrap();
        assert!((pattern.frequency(0) - 0.5).abs() < 0.05);
        assert!((pattern.frequency(1) - 0.5).abs() < 0.05);
        assert_eq!(pattern.max_calls(), Some(1));
    }

    #[test]
    fn star_reduction_counts_calls_not_unfoldings() {
        // The body makes exactly three calls whenever the coin fails, regardless
        // of what the (unknown) results of those calls are.
        let three = fixpoint_of("(fix phi x. if sample <= 1/4 then x else phi (phi (phi (x+1)))) 1");
        let pattern = empirical_counting_pattern(&three, &Rational::one(), 3_000, 17).unwrap();
        assert!((pattern.frequency(0) - 0.25).abs() < 0.05);
        assert!((pattern.frequency(3) - 0.75).abs() < 0.05);
        assert_eq!(pattern.frequency(1) + pattern.frequency(2), 0.0);
    }

    #[test]
    fn guard_independence_accepts_the_papers_examples() {
        for b in catalog::table2_benchmarks() {
            let Term::App(fix, _) = b.term.clone() else { panic!("{}", b.name) };
            assert_eq!(
                check_guard_independence(&fix),
                Ok(()),
                "{} should be guard independent",
                b.name
            );
        }
    }

    #[test]
    fn guard_independence_rejects_branching_on_recursive_outcomes() {
        // if (φ x) ≤ 0 then … : the recursive outcome drives control flow.
        let bad = fixpoint_of("(fix phi x. if phi x <= 0 then 0 else phi (x+1)) 0");
        assert!(matches!(
            check_guard_independence(&bad),
            Err(CountingError::GuardDependsOnRecursion(_))
        ));
        // score(φ x) is likewise rejected.
        let bad_score = fixpoint_of("(fix phi x. if sample <= 1/2 then x else score(phi x)) 0");
        assert!(matches!(
            check_guard_independence(&bad_score),
            Err(CountingError::GuardDependsOnRecursion(_))
        ));
        // Arithmetic on recursive outcomes that stays out of guards is fine.
        let ok = fixpoint_of("(fix phi x. if sample <= 1/2 then x else phi (x+1) + 1) 0");
        assert_eq!(check_guard_independence(&ok), Ok(()));
    }

    #[test]
    fn error_messages_render() {
        let e = CountingError::NotFirstOrderFixpoint;
        assert!(e.to_string().contains("first-order"));
        let e = CountingError::GuardDependsOnRecursion("guard".into());
        assert!(e.to_string().contains("guard"));
    }
}
