//! The non-idempotent intersection (NII) counting system of Appendix D.4
//! (Fig. 18), restricted to the first-order fragment used by the counting
//! analysis of §5.
//!
//! In a non-idempotent system the intersection assigned to a variable is a
//! *multiset*, so its cardinality counts how many times the variable is used
//! semantically in the derivation. For a first-order fixpoint `μφ x. M`,
//! Lemma D.9 bounds the *recursive rank* (the maximal number of call sites
//! from which recursive calls are made in one evaluation of the body) by the
//! largest cardinality assigned to `φ` across all derivations of
//! `{φ: a, x: b} ⊢ M : R`.
//!
//! Because the two conditional rules of Fig. 18 type only one branch each, a
//! term has many derivations; this module enumerates the achievable usage
//! counts instead of a single syntactic count, which is what makes the bound
//! of Lemma D.9 tight on programs whose call sites differ per branch.

use probterm_spcf::{Ident, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The usage census of one NII derivation: for every free variable, the
/// cardinality of the multiset (intersection) the derivation assigns to it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct UsageCount {
    counts: BTreeMap<Ident, usize>,
}

impl UsageCount {
    /// The empty census (closed subterm, or a subterm using no variables).
    pub fn empty() -> UsageCount {
        UsageCount::default()
    }

    /// A census with a single use of `x`.
    pub fn single(x: &Ident) -> UsageCount {
        let mut counts = BTreeMap::new();
        counts.insert(x.clone(), 1);
        UsageCount { counts }
    }

    /// The number of uses of `x` (zero if absent).
    pub fn of(&self, x: &Ident) -> usize {
        self.counts.get(x).copied().unwrap_or(0)
    }

    /// The context disjoint union `Γ ⊎ Δ` of Fig. 18: multiset cardinalities
    /// add up.
    pub fn union(&self, other: &UsageCount) -> UsageCount {
        let mut counts = self.counts.clone();
        for (x, n) in &other.counts {
            *counts.entry(x.clone()).or_insert(0) += n;
        }
        UsageCount { counts }
    }

    /// Removes `x` from the census and returns how many uses it had — the
    /// abstraction rule, which moves the variable's multiset into the arrow.
    pub fn split_off(&self, x: &Ident) -> (usize, UsageCount) {
        let mut counts = self.counts.clone();
        let n = counts.remove(x).unwrap_or(0);
        (n, UsageCount { counts })
    }

    /// Iterates over `(variable, uses)` pairs with a positive count.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, usize)> {
        self.counts.iter().map(|(x, n)| (x, *n))
    }
}

impl fmt::Display for UsageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (x, n)) in self.counts.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}: {n}")?;
        }
        write!(f, "}}")
    }
}

/// Enumerates the usage censuses of every NII derivation typing `term` at the
/// base type `R` (Fig. 18, first-order fragment).
///
/// The enumeration follows the rules:
///
/// * variables, numerals and `sample` have exactly one derivation;
/// * primitives and applications combine the derivations of their subterms by
///   context union;
/// * the two conditional rules give one derivation per derivation of the guard
///   and of *either* branch;
/// * a β-redex `(λy. b) a` types `b` once and `a` as many times as `b` uses
///   `y` (the multiset of the abstraction), so uses multiply out — this is
///   what distinguishes *semantic* from syntactic occurrence counting;
/// * other higher-order shapes (abstractions in result position, applications
///   of arbitrary terms) do not occur in first-order bodies and yield no
///   derivation.
///
/// The result is deduplicated; for typical bodies it is small (one census per
/// control-flow path).
pub fn derivation_usage_counts(term: &Term) -> BTreeSet<UsageCount> {
    match term {
        Term::Var(x) => BTreeSet::from([UsageCount::single(x)]),
        Term::Num(_) | Term::Sample => BTreeSet::from([UsageCount::empty()]),
        Term::Score(m) => derivation_usage_counts(m),
        Term::Prim(_, args) => {
            let mut acc = BTreeSet::from([UsageCount::empty()]);
            for arg in args {
                acc = cross_union(&acc, &derivation_usage_counts(arg));
            }
            acc
        }
        Term::If(guard, then, els) => {
            let guards = derivation_usage_counts(guard);
            let mut branches = derivation_usage_counts(then);
            branches.extend(derivation_usage_counts(els));
            cross_union(&guards, &branches)
        }
        Term::App(fun, arg) => apply(fun, arg),
        // A bare abstraction or fixpoint cannot have type R.
        Term::Lam(_, _) | Term::Fix(_, _, _) => BTreeSet::new(),
    }
}

/// Derivations of an application, handling the first-order shapes: a call of a
/// variable (e.g. the recursion variable `φ`), a β-redex introduced by `let`,
/// and nested applications of those.
fn apply(fun: &Term, arg: &Term) -> BTreeSet<UsageCount> {
    let args = derivation_usage_counts(arg);
    match fun {
        // `x N`: one use of the (function-typed) variable plus the uses of the
        // argument — the (app) rule with a singleton multiset on the left.
        Term::Var(x) => cross_union(&BTreeSet::from([UsageCount::single(x)]), &args),
        // `(λy. b) N` (the desugaring of `let y = N in b`): the body is typed
        // once; the argument is typed once per use of `y` in that derivation.
        Term::Lam(y, body) => {
            let mut out = BTreeSet::new();
            for body_census in derivation_usage_counts(body) {
                let (y_uses, rest) = body_census.split_off(y);
                for combo in choose_with_repetition(&args, y_uses) {
                    out.insert(rest.union(&combo));
                }
            }
            out
        }
        // Curried call of a variable, e.g. `φ (φ (x+1))` has `φ (…)` in
        // function position only when φ is higher-order — not first-order —
        // but `(x N₁) N₂` style chains still recurse structurally.
        Term::App(_, _) => cross_union(&derivation_usage_counts(fun), &args),
        _ => BTreeSet::new(),
    }
}

/// All context unions of one census from `a` with one census from `b`.
fn cross_union(a: &BTreeSet<UsageCount>, b: &BTreeSet<UsageCount>) -> BTreeSet<UsageCount> {
    let mut out = BTreeSet::new();
    for x in a {
        for y in b {
            out.insert(x.union(y));
        }
    }
    out
}

/// All unions of `k` (not necessarily distinct) censuses from `choices`.
fn choose_with_repetition(choices: &BTreeSet<UsageCount>, k: usize) -> BTreeSet<UsageCount> {
    let mut acc = BTreeSet::from([UsageCount::empty()]);
    for _ in 0..k {
        acc = cross_union(&acc, choices);
    }
    acc
}

/// The largest number of uses of `var` over all NII derivations of `term` at
/// type `R` — for the recursion variable of a first-order fixpoint body this
/// is the recursive-rank bound of Lemma D.9.
pub fn max_variable_uses(term: &Term, var: &Ident) -> usize {
    derivation_usage_counts(term)
        .iter()
        .map(|census| census.of(var))
        .max()
        .unwrap_or(0)
}

/// The set of achievable use counts of `var` across all derivations — one
/// entry per control-flow resolution of the conditionals. For a fixpoint body
/// this is the support of the counting pattern over-approximated purely by
/// typing (no probabilities involved).
pub fn variable_use_counts(term: &Term, var: &Ident) -> BTreeSet<usize> {
    derivation_usage_counts(term)
        .iter()
        .map(|census| census.of(var))
        .collect()
}

/// The recursive-rank bound of Lemma D.9 for a first-order fixpoint
/// `μφ x. M` (possibly applied to an initial argument, as the benchmark
/// catalogue does): the maximal multiset cardinality assigned to `φ`.
///
/// Returns `None` if the term is not a fixpoint (after stripping one
/// application).
pub fn recursive_rank_bound_nii(term: &Term) -> Option<usize> {
    let fixpoint = match term {
        Term::App(f, _) if matches!(**f, Term::Fix(_, _, _)) => &**f,
        other => other,
    };
    match fixpoint {
        Term::Fix(phi, _x, body) => Some(max_variable_uses(body, phi)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::{catalog, ident, parse_term};
    use probterm_numerics::Rational;

    fn counts_of_phi(src: &str) -> BTreeSet<usize> {
        let term = parse_term(src).unwrap();
        let fixpoint = match &term {
            Term::App(f, _) => (**f).clone(),
            other => other.clone(),
        };
        let Term::Fix(phi, _, body) = &fixpoint else { panic!("expected a fixpoint") };
        variable_use_counts(body, phi)
    }

    #[test]
    fn affine_printer_has_rank_one() {
        let counts = counts_of_phi("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 1");
        assert_eq!(counts, BTreeSet::from([0, 1]));
    }

    #[test]
    fn nonaffine_printer_has_rank_two() {
        let term = catalog::printer_nonaffine(Rational::from_ratio(1, 2)).term;
        assert_eq!(recursive_rank_bound_nii(&term), Some(2));
        let counts = counts_of_phi("(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1");
        assert_eq!(counts, BTreeSet::from([0, 2]));
    }

    #[test]
    fn tired_printer_has_rank_three_with_all_branch_counts() {
        // Ex. 5.1: branches make 0, 2 or 3 recursive calls.
        let term = catalog::tired_printer(Rational::parse("0.6").unwrap()).term;
        assert_eq!(recursive_rank_bound_nii(&term), Some(3));
        let Term::App(f, _) = &term else { panic!() };
        let Term::Fix(phi, _, body) = &**f else { panic!() };
        assert_eq!(variable_use_counts(body, phi), BTreeSet::from([0, 2, 3]));
    }

    #[test]
    fn let_bindings_count_semantic_not_syntactic_uses() {
        // `let y = phi 0 in y + y` uses φ once syntactically but twice
        // semantically: the NII system charges one derivation of the argument
        // per use of `y`.
        let term = parse_term("(fix phi x. let y = phi 0 in y + y) 1").unwrap();
        assert_eq!(recursive_rank_bound_nii(&term), Some(2));
        // Conversely `let y = x in phi (y + y)` uses φ once.
        let term = parse_term("(fix phi x. let y = x in phi (y + y)) 1").unwrap();
        assert_eq!(recursive_rank_bound_nii(&term), Some(1));
        // A discarded binding means the argument is not typed at all.
        let term = parse_term("(fix phi x. let y = phi 0 in x) 1").unwrap();
        assert_eq!(recursive_rank_bound_nii(&term), Some(0));
    }

    #[test]
    fn branch_dependent_call_sites_are_tracked_per_derivation() {
        // 1 call in the left branch, 3 in the right one.
        let counts = counts_of_phi(
            "(fix phi x. if sample <= 1/2 then phi x else phi (phi (phi x))) 1",
        );
        assert_eq!(counts, BTreeSet::from([1, 3]));
    }

    #[test]
    fn error_reuse_printer_matches_example_5_15() {
        let term = catalog::error_reuse_printer(Rational::parse("0.65").unwrap()).term;
        assert_eq!(recursive_rank_bound_nii(&term), Some(3));
    }

    #[test]
    fn usage_count_algebra() {
        let x = ident("x");
        let y = ident("y");
        let a = UsageCount::single(&x);
        let b = UsageCount::single(&x).union(&UsageCount::single(&y));
        let u = a.union(&b);
        assert_eq!(u.of(&x), 2);
        assert_eq!(u.of(&y), 1);
        assert_eq!(u.of(&ident("z")), 0);
        let (n, rest) = u.split_off(&x);
        assert_eq!(n, 2);
        assert_eq!(rest.of(&x), 0);
        assert_eq!(rest.of(&y), 1);
        assert_eq!(u.iter().count(), 2);
        assert!(u.to_string().contains("x: 2"));
        assert_eq!(UsageCount::empty().of(&x), 0);
    }

    #[test]
    fn non_fixpoints_are_rejected_and_values_have_no_r_derivation() {
        assert_eq!(recursive_rank_bound_nii(&parse_term("1 + 1").unwrap()), None);
        // A bare abstraction has no derivation at type R.
        assert!(derivation_usage_counts(&parse_term("lam x. x").unwrap()).is_empty());
        // Numerals and sample have exactly one (empty) census.
        assert_eq!(derivation_usage_counts(&parse_term("sample").unwrap()).len(), 1);
    }

    #[test]
    fn scores_and_primitives_accumulate_uses() {
        let term = parse_term("score(x) + x").unwrap();
        let counts = variable_use_counts(&term, &ident("x"));
        assert_eq!(counts, BTreeSet::from([2]));
    }
}
