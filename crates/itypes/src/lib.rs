//! The intersection type system of paper §4.
//!
//! Set types annotate a term of base type with a finite set of triples
//! `(α, ℘, τ)`: an interval (or arrow) type `α`, a terminating interval trace
//! `℘`, and a step count `τ`. Theorem 4.1 states that the least upper bound of
//! `ω(A) = Σᵢ ω(℘ᵢ)` over all derivable judgements `⊢ M^2ℑ : A` equals
//! `Pterm(M)`, and that the lub of `E(A) = Σᵢ ω(℘ᵢ)·τᵢ` equals `Eterm(M)` for
//! AST terms.
//!
//! This crate provides
//!
//! * the [`SetType`] data structure with its weight `ω` and expectation `E`,
//! * [`derive_set_type`]: a constructive use of the completeness direction —
//!   every finite, pairwise *strongly compatible* family of terminating
//!   interval traces is turned into a set-type judgement (Prop. C.15) by
//!   re-running the interval reduction and recording the step counts,
//! * [`refine_strongly_compatible`]: the splitting of Lemma C.14 that turns a
//!   compatible family into a strongly compatible one denoting the same set
//!   of standard traces,
//! * [`SetTypeJudgement`]: the judgement with its soundness guarantees
//!   (weights lower-bound `Pterm`, Thm. 3.4 + Thm. 4.1).

#![warn(missing_docs)]

mod nii;

pub use nii::{
    derivation_usage_counts, max_variable_uses, recursive_rank_bound_nii, variable_use_counts,
    UsageCount,
};

use probterm_intervalsem::{run_interval, IOutcome, IntervalTrace};
use probterm_numerics::{Interval, Rational};
use probterm_spcf::Term;
use std::fmt;

/// The "type" component of a set-type element. For base-type programs — the
/// only ones whose termination probability is of interest — this is an
/// interval; higher-order components are summarised by their arity as in the
/// oracle-free reading of the system.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementType {
    /// An interval numeral type `[a, b]`.
    Interval(Interval),
    /// A function value (λ- or μ-abstraction); its intersection structure is
    /// not needed for the weight/expectation computations.
    Function,
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementType::Interval(iv) => write!(f, "{iv}"),
            ElementType::Function => write!(f, "→"),
        }
    }
}

/// One element `(α, ℘, τ)` of a set type: the result type, the terminating
/// interval trace, and the number of reduction steps.
#[derive(Debug, Clone, PartialEq)]
pub struct SetTypeElement {
    /// The result type `α`.
    pub ty: ElementType,
    /// The terminating interval trace `℘`.
    pub trace: IntervalTrace,
    /// The step count `τ` (`#℘↓(M)`).
    pub steps: usize,
}

/// A set type `A = {(α₁, ℘₁, τ₁), …, (αₘ, ℘ₘ, τₘ)}`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SetType {
    /// The elements of the set type.
    pub elements: Vec<SetTypeElement>,
}

impl SetType {
    /// The empty set type `{}` (always derivable, carrying no weight).
    pub fn empty() -> SetType {
        SetType::default()
    }

    /// The weight `ω(A) = Σᵢ ω(℘ᵢ)`.
    pub fn weight(&self) -> Rational {
        self.elements.iter().map(|e| e.trace.weight()).sum()
    }

    /// The expectation `E(A) = Σᵢ ω(℘ᵢ)·τᵢ`.
    pub fn expectation(&self) -> Rational {
        self.elements
            .iter()
            .map(|e| e.trace.weight() * Rational::from_int(e.steps as i64))
            .sum()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the set type is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

impl fmt::Display for SetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({}, {}, {})", e.ty, e.trace, e.steps)?;
        }
        write!(f, "}}")
    }
}

/// A derived judgement `⊢ M^2ℑ : A` together with the term it talks about.
#[derive(Debug, Clone, PartialEq)]
pub struct SetTypeJudgement {
    /// The (standard) subject term `M`.
    pub term: Term,
    /// The derived set type.
    pub set_type: SetType,
}

impl SetTypeJudgement {
    /// The lower bound on `Pterm(M)` certified by this judgement
    /// (Thm. 4.1 (1), soundness direction).
    pub fn termination_lower_bound(&self) -> Rational {
        self.set_type.weight()
    }

    /// The lower bound on `Eterm(M)` certified by this judgement for AST terms
    /// (Thm. 4.1 (2)).
    pub fn expected_steps_lower_bound(&self) -> Rational {
        self.set_type.expectation()
    }
}

/// Errors raised while constructing a set-type derivation.
#[derive(Debug, Clone, PartialEq)]
pub enum DeriveError {
    /// One of the supplied traces is not a terminating interval trace of the
    /// term (so no derivation can mention it).
    NotTerminating(IntervalTrace),
    /// The supplied traces are not pairwise strongly compatible even after
    /// refinement (they overlap on a set of positive measure), so their
    /// weights must not be added up.
    Overlapping(IntervalTrace, IntervalTrace),
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::NotTerminating(t) => {
                write!(f, "interval trace {t} is not terminating for the term")
            }
            DeriveError::Overlapping(a, b) => {
                write!(f, "interval traces {a} and {b} overlap on a set of positive measure")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// Splits a family of interval traces into a *strongly compatible* family
/// denoting the same set of standard traces (Lemma C.14): traces either agree
/// on a common prefix or are almost disjoint at the first position where they
/// differ.
///
/// The construction proceeds position by position: all endpoints occurring at
/// a position partition `[0,1]` into sub-intervals; every trace is replaced by
/// the traces obtained by intersecting with each cell of that partition.
pub fn refine_strongly_compatible(traces: &[IntervalTrace]) -> Vec<IntervalTrace> {
    fn go(traces: Vec<Vec<Interval>>, position: usize) -> Vec<Vec<Interval>> {
        // Traces shorter than `position` are finished; group the rest by cell.
        let active: Vec<&Vec<Interval>> = traces.iter().filter(|t| t.len() > position).collect();
        if active.is_empty() {
            return traces;
        }
        // Collect all endpoints at this position.
        let mut endpoints: Vec<Rational> = Vec::new();
        for t in &active {
            endpoints.push(t[position].lo().clone());
            endpoints.push(t[position].hi().clone());
        }
        endpoints.sort();
        endpoints.dedup();
        let cells: Vec<Interval> = endpoints
            .windows(2)
            .map(|w| Interval::new(w[0].clone(), w[1].clone()))
            .filter(|iv| !iv.is_point())
            .collect();
        let mut next: Vec<Vec<Interval>> = Vec::new();
        let mut finished: Vec<Vec<Interval>> = Vec::new();
        for t in traces {
            if t.len() <= position {
                finished.push(t);
                continue;
            }
            for cell in &cells {
                if t[position].contains_interval(cell) {
                    let mut refined = t.clone();
                    refined[position] = cell.clone();
                    next.push(refined);
                }
            }
        }
        let mut result = go(next, position + 1);
        result.extend(finished);
        result
    }
    let raw: Vec<Vec<Interval>> = traces.iter().map(|t| t.intervals().to_vec()).collect();
    go(raw, 0)
        .into_iter()
        .map(IntervalTrace::new)
        .collect()
}

/// Constructs a set-type judgement `⊢ M^2ℑ : A` from a family of terminating
/// interval traces, following the completeness construction of Prop. C.15:
/// the family is first refined into a strongly compatible one (Lemma C.14),
/// each refined trace is replayed through the interval reduction to certify
/// termination and obtain its step count, and the elements are assembled into
/// the set type.
///
/// # Errors
///
/// Returns an error if a refined trace is not terminating for the term or if
/// two traces overlap with positive measure (which would make the weight sum
/// unsound).
pub fn derive_set_type(term: &Term, traces: &[IntervalTrace]) -> Result<SetTypeJudgement, DeriveError> {
    let refined = refine_strongly_compatible(traces);
    // Reject families that still overlap (identical refined traces are merged).
    let mut unique: Vec<IntervalTrace> = Vec::new();
    for t in refined {
        if !unique.contains(&t) {
            unique.push(t);
        }
    }
    for (i, a) in unique.iter().enumerate() {
        for b in &unique[i + 1..] {
            if !a.compatible(b) {
                return Err(DeriveError::Overlapping(a.clone(), b.clone()));
            }
        }
    }
    let mut elements = Vec::new();
    for trace in unique {
        match run_interval(term, &trace, 1_000_000) {
            IOutcome::Terminated { value, steps } => {
                let ty = match value.as_num() {
                    Some(iv) => ElementType::Interval(iv.clone()),
                    None => ElementType::Function,
                };
                elements.push(SetTypeElement { ty, trace, steps });
            }
            _ => return Err(DeriveError::NotTerminating(trace)),
        }
    }
    Ok(SetTypeJudgement {
        term: term.clone(),
        set_type: SetType { elements },
    })
}

/// Builds increasingly precise set-type judgements for a term by harvesting
/// terminating interval traces from the symbolic-execution lower-bound engine
/// at the given exploration depth. The resulting weights form the
/// monotonically increasing chain whose lub is `Pterm(M)` (Thm. 4.1).
pub fn derive_from_exploration(term: &Term, depth: usize) -> SetTypeJudgement {
    use probterm_intervalsem::{explore, ExplorationConfig};
    use std::collections::VecDeque;
    let exploration = explore(
        term,
        &ExplorationConfig::default()
            .with_max_steps_per_path(depth)
            .with_max_paths(50_000),
    );
    // Turn each symbolic path into interval traces: bisect the unit box
    // breadth-first against the path constraints and keep every sub-box on
    // which all constraints certainly hold (boundary slivers stay undecided
    // and are simply dropped, keeping the weight a sound lower bound).
    let mut traces: Vec<IntervalTrace> = Vec::new();
    for path in &exploration.terminated {
        let mut queue: VecDeque<probterm_numerics::IntervalBox> =
            VecDeque::from([probterm_numerics::IntervalBox::unit(path.sample_count)]);
        let mut budget = 256usize;
        while let Some(cube) = queue.pop_front() {
            if budget == 0 {
                break;
            }
            budget -= 1;
            let mut all = true;
            let mut any_fail = false;
            for c in &path.constraints {
                match c.check_box(&cube) {
                    Some(true) => {}
                    Some(false) => {
                        any_fail = true;
                        break;
                    }
                    None => all = false,
                }
            }
            if any_fail {
                continue;
            }
            if all {
                let trace = IntervalTrace::new(cube.intervals().to_vec());
                if run_interval(term, &trace, 1_000_000).is_terminated() {
                    traces.push(trace);
                }
                continue;
            }
            if let Some((a, b)) = cube.bisect_widest() {
                queue.push_back(a);
                queue.push_back(b);
            }
        }
    }
    derive_set_type(term, &traces).unwrap_or(SetTypeJudgement {
        term: term.clone(),
        set_type: SetType::empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::parse_term;

    fn tr(quads: &[(i64, i64, i64, i64)]) -> IntervalTrace {
        IntervalTrace::from_ratios(quads)
    }

    #[test]
    fn empty_set_type_has_zero_weight() {
        let a = SetType::empty();
        assert!(a.is_empty());
        assert_eq!(a.weight(), Rational::zero());
        assert_eq!(a.expectation(), Rational::zero());
        assert_eq!(a.to_string(), "{}");
    }

    #[test]
    fn derivation_for_single_conditional() {
        let term = parse_term("if sample <= 0.5 then 0 else 1").unwrap();
        // The else-branch trace must stay strictly above 1/2: the boundary
        // trace [1/2, 1] cannot decide the branch (Ex. B.4 / Fig. 9).
        let judgement = derive_set_type(
            &term,
            &[tr(&[(0, 1, 1, 2)]), tr(&[(3, 5, 1, 1)])],
        )
        .unwrap();
        assert_eq!(judgement.set_type.len(), 2);
        assert_eq!(judgement.termination_lower_bound(), Rational::from_ratio(9, 10));
        // Both branches take the same number of steps here, so E(A) equals
        // ω(A) times that count.
        let steps = judgement.set_type.elements[0].steps;
        assert_eq!(
            judgement.expected_steps_lower_bound(),
            Rational::from_ratio(9, 10) * Rational::from_int(steps as i64)
        );
        assert!(judgement.set_type.to_string().contains("[0, 1/2]"));
    }

    #[test]
    fn non_terminating_traces_are_rejected() {
        let term = parse_term("if sample <= 0.5 then 0 else 1").unwrap();
        // The undecidable full-interval trace cannot appear in a derivation (Ex. B.4).
        let err = derive_set_type(&term, &[tr(&[(0, 1, 1, 1)])]).unwrap_err();
        assert!(matches!(err, DeriveError::NotTerminating(_)));
        // Wrong length traces are rejected as well.
        let err = derive_set_type(&term, &[tr(&[(0, 1, 1, 4), (0, 1, 1, 4)])]).unwrap_err();
        assert!(matches!(err, DeriveError::NotTerminating(_)));
    }

    #[test]
    fn example_c13_strong_compatibility_refinement() {
        // The two compatible-but-not-strongly-compatible traces of Ex. C.13:
        // [0,1/2][0,1/2] and [0,1/3][1/2,1].
        let traces = vec![tr(&[(0, 1, 1, 2), (0, 1, 1, 2)]), tr(&[(0, 1, 1, 3), (1, 2, 1, 1)])];
        let refined = refine_strongly_compatible(&traces);
        // The refinement covers the same measure.
        let before: Rational = traces.iter().map(IntervalTrace::weight).sum();
        let after: Rational = refined.iter().map(IntervalTrace::weight).sum();
        assert_eq!(before, after);
        // And is pairwise strongly compatible in particular pairwise compatible.
        for (i, a) in refined.iter().enumerate() {
            for b in &refined[i + 1..] {
                assert!(a.compatible(b), "{a} vs {b}");
            }
        }
        assert!(refined.len() >= 3);
    }

    #[test]
    fn weights_lower_bound_termination_probability_of_the_geometric_term() {
        let term = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        // Traces for 0 and 1 recursive calls (the failure interval must stay
        // strictly above 1/2 for the branch to be decided).
        let judgement = derive_set_type(
            &term,
            &[tr(&[(0, 1, 1, 2)]), tr(&[(3, 5, 1, 1), (0, 1, 1, 2)])],
        )
        .unwrap();
        assert_eq!(judgement.termination_lower_bound(), Rational::from_ratio(7, 10));
        // Deeper runs take strictly more steps, so E(A) exceeds ω(A) times the
        // smallest step count among the elements.
        let shallow_steps = judgement
            .set_type
            .elements
            .iter()
            .map(|e| e.steps)
            .min()
            .unwrap();
        assert!(judgement.expected_steps_lower_bound()
            > Rational::from_ratio(7, 10) * Rational::from_int(shallow_steps as i64));
        // And the element with the longer trace indeed takes more steps.
        let (short, long): (Vec<_>, Vec<_>) = judgement
            .set_type
            .elements
            .iter()
            .partition(|e| e.trace.len() == 1);
        assert!(short[0].steps < long[0].steps);
    }

    #[test]
    fn judgements_from_the_exploration_engine_are_sound_and_improve_with_depth() {
        let term = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let shallow = derive_from_exploration(&term, 30);
        let deep = derive_from_exploration(&term, 80);
        let ws = shallow.termination_lower_bound();
        let wd = deep.termination_lower_bound();
        assert!(ws <= wd, "{ws} vs {wd}");
        assert!(wd <= Rational::one());
        assert!(wd >= Rational::from_ratio(3, 4));
    }

    #[test]
    fn overlapping_traces_are_rejected() {
        let term = parse_term("if sample <= 0.5 then 0 else 1").unwrap();
        // Two identical traces are merged (not an error)…
        let ok = derive_set_type(&term, &[tr(&[(0, 1, 1, 4)]), tr(&[(0, 1, 1, 4)])]).unwrap();
        assert_eq!(ok.set_type.len(), 1);
        // …while properly overlapping, non-identical traces at the same length
        // are refined into almost-disjoint pieces covering the union.
        let j = derive_set_type(&term, &[tr(&[(0, 1, 1, 4)]), tr(&[(1, 8, 3, 8)])]).unwrap();
        assert_eq!(j.termination_lower_bound(), Rational::from_ratio(3, 8));
    }
}
