//! Shared rendering of analysis artifacts.
//!
//! One crate owns every human- and machine-facing rendering of the engines'
//! richer outputs, so the CLI and the analysis service emit byte-identical
//! artifacts:
//!
//! * **Provenance** ([`probterm_intervalsem::Provenance`]) as indented text
//!   ([`render_text`]), as a JSON artifact with a documented stable schema
//!   ([`render_json`], schema [`SCHEMA`]), and as a Graphviz DOT rendering of
//!   the explored branch tree with per-path mass annotations
//!   ([`render_dot`]).
//! * **Symbolic execution trees** ([`probterm_astver::ExecTree`], the AST
//!   verifier's Fig. 6a object) as DOT ([`exec_tree_dot`]) — sharing the same
//!   [`DotBuilder`] so both families of diagrams agree on escaping and
//!   styling.
//!
//! # JSON schema (`probterm-explain-v1`)
//!
//! Top level: `schema` (string, [`SCHEMA`]), `program` (string), `depth`
//! (uint), `complete` (bool — `false` iff the run was interrupted by a
//! deadline, matching the service's partial-result convention),
//! `probability` / `expected_steps` (exact rationals as strings, `"p/q"` or
//! `"n"`), `probability_decimal` (10 truncated decimal digits),
//! `probability_f64` / `expected_steps_f64` (lossy doubles), `elapsed_ms`
//! (uint), `paths_total` / `paths_shown` (uint — they differ only under
//! `--top K`), `paths` (array) and `frontier` (object).
//!
//! Each entry of `paths`: `index` (uint, exploration order), `volume` (exact
//! rational string), `volume_f64`, `method` (`"exact"` | `"box_sweep"` |
//! `"unmeasured"`), `box_budget` (uint, only for `box_sweep`), `samples`,
//! `steps` (uints), `branches` (string over `T`/`E`), `constraints` (array of
//! display strings), `result` (string or null), `witness` (null, or an object
//! `{trace: [rational strings], replayed: bool, replay_steps: uint|null}`).
//!
//! `frontier`: `paused`, `stuck` (uints), `interrupted` (bool),
//! `exploration_complete` (bool — no abandoned paths and no interruption),
//! `depth_histogram` (array of `[depth, count]` pairs, sorted by depth),
//! `attributed_mass` / `unaccounted_mass` (exact rational strings) and their
//! `_f64` companions. Invariant: `attributed_mass` equals the sum of *all*
//! path volumes (shown or not) and equals `probability` exactly;
//! `unaccounted_mass = 1 − attributed_mass`.

#![warn(missing_docs)]

use probterm_astver::ExecTree;
use probterm_intervalsem::{Branch, PathProvenance, Provenance, VolumeMethod};
use probterm_numerics::Rational;
use serde::Value;

/// The JSON artifact schema identifier.
pub const SCHEMA: &str = "probterm-explain-v1";

// ------------------------------------------------------------- DOT builder

/// A tiny Graphviz DOT emitter: numbered nodes, labelled edges, and the
/// escaping rules of the DOT language in exactly one place.
#[derive(Debug)]
pub struct DotBuilder {
    body: String,
    nodes: usize,
}

impl DotBuilder {
    /// Starts a digraph with the given default node attributes.
    pub fn new(graph_attrs: &str) -> DotBuilder {
        let mut body = String::from("digraph probterm {\n");
        if !graph_attrs.is_empty() {
            body.push_str("  ");
            body.push_str(graph_attrs);
            body.push('\n');
        }
        DotBuilder { body, nodes: 0 }
    }

    /// Escapes a label for a double-quoted DOT string.
    pub fn escape(label: &str) -> String {
        let mut out = String::with_capacity(label.len());
        for c in label.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    }

    /// Adds a node with a label and optional extra attributes (e.g.
    /// `shape=box`); returns its id.
    pub fn node(&mut self, label: &str, attrs: &str) -> usize {
        let id = self.nodes;
        self.nodes += 1;
        let extra = if attrs.is_empty() { String::new() } else { format!(", {attrs}") };
        self.body
            .push_str(&format!("  n{id} [label=\"{}\"{extra}];\n", Self::escape(label)));
        id
    }

    /// Adds an edge, optionally labelled, with optional extra attributes.
    pub fn edge(&mut self, from: usize, to: usize, label: Option<&str>, attrs: &str) {
        let mut decorations: Vec<String> = Vec::new();
        if let Some(l) = label {
            decorations.push(format!("label=\"{}\"", Self::escape(l)));
        }
        if !attrs.is_empty() {
            decorations.push(attrs.to_string());
        }
        if decorations.is_empty() {
            self.body.push_str(&format!("  n{from} -> n{to};\n"));
        } else {
            self.body
                .push_str(&format!("  n{from} -> n{to} [{}];\n", decorations.join(", ")));
        }
    }

    /// Closes the digraph and returns the DOT source.
    pub fn finish(mut self) -> String {
        self.body.push_str("}\n");
        self.body
    }
}

// ------------------------------------------------------------- selection

/// Returns the paths to display: all of them in exploration order, or — under
/// `--top K` — the `K` largest contributions, ordered by volume descending
/// (ties broken by exploration order).
pub fn select_paths(provenance: &Provenance, top: Option<usize>) -> Vec<&PathProvenance> {
    match top {
        None => provenance.paths.iter().collect(),
        Some(k) => {
            let mut ordered: Vec<&PathProvenance> = provenance.paths.iter().collect();
            ordered.sort_by(|a, b| b.volume.cmp(&a.volume).then(a.index.cmp(&b.index)));
            ordered.truncate(k);
            ordered
        }
    }
}

fn method_str(method: VolumeMethod) -> &'static str {
    match method {
        VolumeMethod::Exact => "exact",
        VolumeMethod::BoxSweep { .. } => "box_sweep",
        VolumeMethod::Unmeasured => "unmeasured",
    }
}

fn branches_str(branches: &[Branch]) -> String {
    branches
        .iter()
        .map(|b| match b {
            Branch::Then => 'T',
            Branch::Else => 'E',
        })
        .collect()
}

// ------------------------------------------------------------- text

/// Renders a provenance artifact as indented terminal text.
pub fn render_text(provenance: &Provenance, top: Option<usize>) -> String {
    let shown = select_paths(provenance, top);
    let f = &provenance.frontier;
    let mut out = String::new();
    out.push_str(&format!(
        "lower bound: {} (= {})\n",
        provenance.result.probability.to_decimal_string(10),
        provenance.result.probability
    ));
    out.push_str(&format!(
        "expected steps (lower bound): {}\n",
        provenance.result.expected_steps.to_decimal_string(4)
    ));
    out.push_str(&format!(
        "paths: {} terminated ({} shown), {} paused, {} stuck\n",
        provenance.paths.len(),
        shown.len(),
        f.paused,
        f.stuck
    ));
    out.push_str(&format!(
        "exploration complete: {}{}\n",
        if f.complete { "yes" } else { "no" },
        if f.interrupted { " (interrupted by deadline)" } else { "" }
    ));
    out.push_str(&format!(
        "unaccounted mass: {} (= {})\n",
        f.unaccounted_mass.to_decimal_string(10),
        f.unaccounted_mass
    ));
    for path in &shown {
        out.push_str(&format!(
            "path {}: volume {} ({}) steps {} samples {} branches [{}]\n",
            path.index,
            path.volume,
            method_str(path.method),
            path.steps,
            path.sample_count,
            branches_str(&path.branches)
        ));
        if !path.constraints.is_empty() {
            let rendered: Vec<String> =
                path.constraints.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("  constraints: {}\n", rendered.join(", ")));
        }
        if let Some(result) = &path.result {
            out.push_str(&format!("  result: {result}\n"));
        }
        match &path.witness {
            Some(w) => {
                let trace: Vec<String> = w.trace.iter().map(|r| r.to_string()).collect();
                out.push_str(&format!(
                    "  witness: [{}] {}\n",
                    trace.join(", "),
                    match (w.replayed, w.replay_steps) {
                        (true, Some(steps)) => format!("replayed to termination in {steps} steps"),
                        _ => "REPLAY FAILED".to_string(),
                    }
                ));
            }
            None => out.push_str("  witness: none found\n"),
        }
    }
    if !f.depth_histogram.is_empty() {
        let cells: Vec<String> = f
            .depth_histogram
            .iter()
            .map(|(depth, count)| format!("{count}\u{00d7}depth {depth}"))
            .collect();
        out.push_str(&format!("frontier: {}\n", cells.join(", ")));
    }
    out
}

// ------------------------------------------------------------- JSON

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn rational(r: &Rational) -> Value {
    Value::Str(r.to_string())
}

/// Renders a provenance artifact as the documented JSON [`SCHEMA`] (see the
/// crate docs). `program` and `depth` identify the run; `top` limits `paths`
/// to the `K` largest contributions without changing any of the totals.
pub fn render_json(
    provenance: &Provenance,
    program: &str,
    depth: usize,
    top: Option<usize>,
) -> Value {
    let shown = select_paths(provenance, top);
    let f = &provenance.frontier;
    let paths: Vec<Value> = shown
        .iter()
        .map(|path| {
            let mut fields = vec![
                ("index", Value::UInt(path.index as u128)),
                ("volume", rational(&path.volume)),
                ("volume_f64", Value::Num(path.volume.to_f64())),
                ("method", Value::Str(method_str(path.method).to_string())),
            ];
            if let VolumeMethod::BoxSweep { max_boxes } = path.method {
                fields.push(("box_budget", Value::UInt(max_boxes as u128)));
            }
            fields.push(("samples", Value::UInt(path.sample_count as u128)));
            fields.push(("steps", Value::UInt(path.steps as u128)));
            fields.push(("branches", Value::Str(branches_str(&path.branches))));
            fields.push((
                "constraints",
                Value::Array(
                    path.constraints.iter().map(|c| Value::Str(c.to_string())).collect(),
                ),
            ));
            fields.push((
                "result",
                match &path.result {
                    Some(v) => Value::Str(v.to_string()),
                    None => Value::Null,
                },
            ));
            fields.push((
                "witness",
                match &path.witness {
                    Some(w) => obj(vec![
                        ("trace", Value::Array(w.trace.iter().map(rational).collect())),
                        ("replayed", Value::Bool(w.replayed)),
                        (
                            "replay_steps",
                            match w.replay_steps {
                                Some(steps) => Value::UInt(steps as u128),
                                None => Value::Null,
                            },
                        ),
                    ]),
                    None => Value::Null,
                },
            ));
            obj(fields)
        })
        .collect();
    let histogram: Vec<Value> = f
        .depth_histogram
        .iter()
        .map(|(depth, count)| {
            Value::Array(vec![Value::UInt(*depth as u128), Value::UInt(*count as u128)])
        })
        .collect();
    obj(vec![
        ("schema", Value::Str(SCHEMA.to_string())),
        ("program", Value::Str(program.to_string())),
        ("depth", Value::UInt(depth as u128)),
        ("complete", Value::Bool(!f.interrupted)),
        ("probability", rational(&provenance.result.probability)),
        (
            "probability_decimal",
            Value::Str(provenance.result.probability.to_decimal_string(10)),
        ),
        ("probability_f64", Value::Num(provenance.result.probability.to_f64())),
        ("expected_steps", rational(&provenance.result.expected_steps)),
        ("expected_steps_f64", Value::Num(provenance.result.expected_steps.to_f64())),
        ("elapsed_ms", Value::UInt(provenance.result.elapsed.as_millis())),
        ("paths_total", Value::UInt(provenance.paths.len() as u128)),
        ("paths_shown", Value::UInt(paths.len() as u128)),
        ("paths", Value::Array(paths)),
        (
            "frontier",
            obj(vec![
                ("paused", Value::UInt(f.paused as u128)),
                ("stuck", Value::UInt(f.stuck as u128)),
                ("interrupted", Value::Bool(f.interrupted)),
                ("exploration_complete", Value::Bool(f.complete)),
                ("depth_histogram", Value::Array(histogram)),
                ("attributed_mass", rational(&f.attributed_mass)),
                ("attributed_mass_f64", Value::Num(f.attributed_mass.to_f64())),
                ("unaccounted_mass", rational(&f.unaccounted_mass)),
                ("unaccounted_mass_f64", Value::Num(f.unaccounted_mass.to_f64())),
            ]),
        ),
    ])
}

// ------------------------------------------------------------- DOT

/// How many terminated paths [`render_dot`] draws when no `--top` is given.
const DOT_DEFAULT_PATHS: usize = 64;
/// How many frontier (paused) leaves [`render_dot`] draws.
const DOT_FRONTIER_LEAVES: usize = 32;

/// Renders the explored branch tree as Graphviz DOT: internal nodes are
/// branch prefixes, solid box leaves are terminated paths annotated with
/// their mass, method and witness status, dashed leaves are paused frontier
/// paths. Edge labels carry the branch constraints.
pub fn render_dot(provenance: &Provenance, top: Option<usize>) -> String {
    let shown = select_paths(provenance, Some(top.unwrap_or(DOT_DEFAULT_PATHS)));
    let truncated_paths = provenance.paths.len() - shown.len();
    let mut dot = DotBuilder::new("node [fontname=\"Helvetica\"];");
    let root = dot.node("start", "shape=circle");
    // Trie of branch prefixes over 'T'/'E'.
    let mut trie: Vec<(String, usize)> = vec![(String::new(), root)];
    let lookup = |dot: &mut DotBuilder,
                      trie: &mut Vec<(String, usize)>,
                      branches: &[Branch],
                      labels: &[Option<String>]|
     -> usize {
        let mut prefix = String::new();
        let mut node = trie[0].1;
        for (i, b) in branches.iter().enumerate() {
            let step = match b {
                Branch::Then => 'T',
                Branch::Else => 'E',
            };
            prefix.push(step);
            match trie.iter().find(|(p, _)| *p == prefix) {
                Some((_, id)) => node = *id,
                None => {
                    let child = dot.node("", "shape=point");
                    let label = labels.get(i).and_then(|l| l.as_deref());
                    dot.edge(node, child, label, "");
                    trie.push((prefix.clone(), child));
                    node = child;
                }
            }
        }
        node
    };
    for path in &shown {
        // The i-th branch corresponds to the i-th non-score constraint: every
        // fork records exactly one NonPositive/Positive constraint, while
        // `score` interleaves NonNegative ones.
        let labels: Vec<Option<String>> = {
            use probterm_intervalsem::ConstraintKind;
            path.constraints
                .iter()
                .filter(|c| c.kind != ConstraintKind::NonNegative)
                .map(|c| Some(c.to_string()))
                .collect()
        };
        let parent = lookup(&mut dot, &mut trie, &path.branches, &labels);
        let witness_mark = match &path.witness {
            Some(w) if w.replayed => ", witness ok",
            Some(_) => ", WITNESS FAILED",
            None => "",
        };
        let leaf = dot.node(
            &format!(
                "path {}\nvolume {} ({}){}",
                path.index,
                path.volume,
                method_str(path.method),
                witness_mark
            ),
            "shape=box",
        );
        dot.edge(parent, leaf, None, "");
    }
    if truncated_paths > 0 {
        let summary =
            dot.node(&format!("+{truncated_paths} more terminated paths"), "shape=box, style=dotted");
        dot.edge(root, summary, None, "style=dotted");
    }
    let frontier_shown = provenance.frontier_paths.iter().take(DOT_FRONTIER_LEAVES);
    for f in frontier_shown {
        let parent = lookup(&mut dot, &mut trie, &f.branches, &[]);
        let leaf = dot.node(
            &format!("paused\ndepth {} steps {}", f.depth(), f.steps),
            "shape=box, style=dashed",
        );
        dot.edge(parent, leaf, None, "style=dashed");
    }
    let truncated_frontier =
        provenance.frontier_paths.len().saturating_sub(DOT_FRONTIER_LEAVES);
    if truncated_frontier > 0 {
        let summary = dot.node(
            &format!("+{truncated_frontier} more paused paths"),
            "shape=box, style=dashed",
        );
        dot.edge(root, summary, None, "style=dashed");
    }
    dot.finish()
}

// ------------------------------------------------------------- ExecTree DOT

/// Renders an AST-verifier symbolic execution tree (Fig. 6a) as Graphviz
/// DOT, sharing the [`DotBuilder`] styling with [`render_dot`]: `μ` nodes are
/// circles, probabilistic branches diamonds, Environment-resolved branches
/// red diamonds, leaves boxes.
pub fn exec_tree_dot(tree: &ExecTree) -> String {
    let mut dot = DotBuilder::new("node [fontname=\"Helvetica\"];");
    fn go(dot: &mut DotBuilder, tree: &ExecTree) -> usize {
        match tree {
            ExecTree::Leaf => dot.node("leaf", "shape=box"),
            ExecTree::Stuck => dot.node("stuck", "shape=box, style=dashed"),
            ExecTree::Mu(rest) => {
                let child = go(dot, rest);
                let id = dot.node("\u{03bc}", "shape=circle");
                dot.edge(id, child, None, "");
                id
            }
            ExecTree::Score { value, rest } => {
                let child = go(dot, rest);
                let id = dot.node(&format!("score({value})"), "shape=ellipse");
                dot.edge(id, child, None, "");
                id
            }
            ExecTree::Prob { guard, then, els } => {
                let t = go(dot, then);
                let e = go(dot, els);
                let id = dot.node(&format!("{guard} \u{2264} 0"), "shape=diamond");
                dot.edge(id, t, Some("then"), "");
                dot.edge(id, e, Some("else"), "");
                id
            }
            ExecTree::Env { id: env_id, guard, then, els } => {
                let t = go(dot, then);
                let e = go(dot, els);
                let id = dot.node(
                    &format!("env #{env_id}\n{guard} \u{2264} 0"),
                    "shape=diamond, color=red",
                );
                dot.edge(id, t, Some("then"), "");
                dot.edge(id, e, Some("else"), "");
                id
            }
        }
    }
    go(&mut dot, tree);
    dot.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_astver::build_tree;
    use probterm_intervalsem::{explain, ExplainConfig, LowerBoundConfig};
    use probterm_spcf::parse_term;

    fn provenance(src: &str, depth: usize) -> Provenance {
        let term = parse_term(src).unwrap();
        explain(
            &term,
            &ExplainConfig::default().with_lower(LowerBoundConfig::default().with_depth(depth)),
        )
    }

    fn assert_dot_well_formed(dot: &str) {
        assert!(dot.starts_with("digraph "), "missing digraph header: {dot}");
        assert!(dot.trim_end().ends_with('}'), "unterminated digraph");
        // Quotes inside labels must be escaped, so unescaped quotes pair up.
        let mut depth = 0i64;
        for c in dot.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces");
        }
        assert_eq!(depth, 0, "unbalanced braces");
    }

    #[test]
    fn geometric_renders_in_all_formats() {
        let p = provenance("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0", 40);
        let text = render_text(&p, None);
        assert!(text.contains("lower bound:"));
        assert!(text.contains("replayed to termination"));
        let json = render_json(&p, "geo", 40, None);
        assert_eq!(json.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(
            json.get("paths_total").and_then(Value::as_u64),
            Some(p.paths.len() as u64)
        );
        // The artifact text round-trips through the JSON parser.
        let rendered = serde_json::to_string_pretty(&json).expect("render");
        let parsed = serde_json::from_str(&rendered).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
        let dot = render_dot(&p, None);
        assert_dot_well_formed(&dot);
        assert!(dot.contains("paused"), "frontier leaves are drawn");
    }

    #[test]
    fn top_k_limits_paths_but_not_totals() {
        let p = provenance("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0", 60);
        assert!(p.paths.len() > 3);
        let json = render_json(&p, "geo", 60, Some(2));
        assert_eq!(json.get("paths_shown").and_then(Value::as_u64), Some(2));
        assert_eq!(
            json.get("paths_total").and_then(Value::as_u64),
            Some(p.paths.len() as u64)
        );
        // Totals still describe the full run.
        assert_eq!(
            json.get("probability").and_then(Value::as_str),
            Some(p.result.probability.to_string().as_str())
        );
        // Top-2 selection picks the largest volumes.
        let selected = select_paths(&p, Some(2));
        assert!(selected[0].volume >= selected[1].volume);
        let max = p.paths.iter().map(|q| q.volume.clone()).max().unwrap();
        assert_eq!(selected[0].volume, max);
    }

    #[test]
    fn dot_escapes_label_metacharacters() {
        assert_eq!(DotBuilder::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let mut dot = DotBuilder::new("");
        let a = dot.node("say \"hi\"", "");
        let b = dot.node("back\\slash", "shape=box");
        dot.edge(a, b, Some("line\nbreak"), "style=dashed");
        let out = dot.finish();
        assert_dot_well_formed(&out);
        assert!(out.contains("say \\\"hi\\\""));
        assert!(out.contains("back\\\\slash"));
        assert!(out.contains("line\\nbreak"));
    }

    #[test]
    fn exec_tree_dot_draws_the_verifier_tree() {
        let term =
            parse_term("(fix phi x. if sample <= 1/2 then x else phi (phi (x + 1))) 1").unwrap();
        let tree = build_tree(&term).expect("tree builds");
        let dot = exec_tree_dot(&tree.tree);
        assert_dot_well_formed(&dot);
        assert!(dot.contains("\u{03bc}"), "recursive-call nodes rendered");
        assert!(dot.contains("shape=diamond"), "branch nodes rendered");
    }
}
