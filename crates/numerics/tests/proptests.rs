//! Property-based tests for the exact numerics substrate.

use proptest::prelude::*;
use probterm_numerics::{BigInt, BigUint, Interval, IntervalBox, Rational};

fn big(v: u128) -> BigUint {
    BigUint::from(v)
}

proptest! {
    // ---------------------------------------------------------------- BigUint

    #[test]
    fn biguint_add_commutes(a in any::<u128>(), b in any::<u128>()) {
        prop_assert_eq!(&big(a) + &big(b), &big(b) + &big(a));
    }

    #[test]
    fn biguint_add_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(&big(a) + &big(b), big(a + b));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(&big(a) * &big(b), big(a * b));
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u128>(), b in 1u128..) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert!(r < big(b));
        prop_assert_eq!(&(&q * &big(b)) + &r, big(a));
    }

    #[test]
    fn biguint_sub_add_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let d = &big(hi) - &big(lo);
        prop_assert_eq!(&d + &big(lo), big(hi));
    }

    #[test]
    fn biguint_gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        let g = big(a as u128).gcd(&big(b as u128));
        if !g.is_zero() {
            prop_assert!(big(a as u128).div_rem(&g).1.is_zero());
            prop_assert!(big(b as u128).div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a == 0 && b == 0);
        }
    }

    #[test]
    fn biguint_shift_roundtrip(a in any::<u128>(), s in 0u64..200) {
        prop_assert_eq!(big(a).shl_bits(s).shr_bits(s), big(a));
    }

    #[test]
    fn biguint_display_parse_roundtrip(a in any::<u128>()) {
        let s = big(a).to_string();
        prop_assert_eq!(BigUint::from_decimal(&s).unwrap(), big(a));
        prop_assert_eq!(s, a.to_string());
    }

    // ----------------------------------------------------------------- BigInt

    #[test]
    fn bigint_arith_matches_i128(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
        let ba = BigInt::from(a as i64);
        let bb = BigInt::from(b as i64);
        prop_assert_eq!((&ba + &bb).to_string(), (a + b).to_string());
        prop_assert_eq!((&ba - &bb).to_string(), (a - b).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a * b).to_string());
    }

    #[test]
    fn bigint_ordering_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    // --------------------------------------------------------------- Rational

    #[test]
    fn rational_add_commutes(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn rational_field_laws(an in -100i64..100, ad in 1i64..100, bn in -100i64..100, bd in 1i64..100, cn in -100i64..100, cd in 1i64..100) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let c = Rational::from_ratio(cn, cd);
        // Associativity and distributivity.
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Additive and multiplicative inverses.
        prop_assert_eq!(&a + &(-&a), Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(an in -1000i64..1000, ad in 1i64..1000, bn in -1000i64..1000, bd in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn rational_f64_exact_roundtrip(v in -1.0e6f64..1.0e6) {
        let q = Rational::from_f64_exact(v);
        prop_assert_eq!(q.to_f64(), v);
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10000i64..10000, ad in 1i64..100) {
        let a = Rational::from_ratio(an, ad);
        let f = Rational::from_bigint(a.floor());
        let c = Rational::from_bigint(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Rational::one());
    }

    #[test]
    fn rational_parse_display_roundtrip(an in -100000i64..100000, ad in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        prop_assert_eq!(Rational::parse(&a.to_string()), Some(a));
    }

    // --------------------------------------------------------------- Interval

    #[test]
    fn interval_add_contains_pointwise_sum(
        a in 0i64..100, b in 0i64..100, c in 0i64..100, d in 0i64..100,
        t in 0i64..=10, s in 0i64..=10,
    ) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let (c, d) = if c <= d { (c, d) } else { (d, c) };
        let x = Interval::from_ratios(a, 1, b, 1);
        let y = Interval::from_ratios(c, 1, d, 1);
        // Pick points inside x and y by convex combination t/10, s/10.
        let px = Rational::from_int(a) + (Rational::from_int(b - a) * Rational::from_ratio(t, 10));
        let py = Rational::from_int(c) + (Rational::from_int(d - c) * Rational::from_ratio(s, 10));
        prop_assert!(x.add(&y).contains(&(&px + &py)));
        prop_assert!(x.sub(&y).contains(&(&px - &py)));
        prop_assert!(x.mul(&y).contains(&(&px * &py)));
    }

    #[test]
    fn interval_split_preserves_width(a in -50i64..50, w in 1i64..50, n in 1usize..8) {
        let iv = Interval::from_ratios(a, 1, a + w, 1);
        let parts = iv.split(n);
        prop_assert_eq!(parts.len(), n);
        let total: Rational = parts.iter().map(|p| p.width()).sum();
        prop_assert_eq!(total, iv.width());
        // Adjacent parts are almost disjoint and ordered.
        for pair in parts.windows(2) {
            prop_assert!(pair[0].almost_disjoint(&pair[1]));
            prop_assert!(pair[0].hi() <= pair[1].lo());
        }
    }

    #[test]
    fn box_volume_is_product(ws in proptest::collection::vec((0i64..20, 1i64..20), 0..5)) {
        let ivs: Vec<Interval> = ws
            .iter()
            .map(|(n, d)| Interval::new(Rational::zero(), Rational::from_ratio(*n, *d)))
            .collect();
        let expected: Rational = ivs.iter().map(|iv| iv.width()).product();
        let b: IntervalBox = ivs.into_iter().collect();
        prop_assert_eq!(b.volume(), expected);
    }

    #[test]
    fn box_bisection_preserves_volume(dims in proptest::collection::vec(1i64..10, 1..5)) {
        let b = IntervalBox::new(
            dims.iter().map(|w| Interval::from_ratios(0, 1, *w, 1)).collect(),
        );
        if let Some((l, r)) = b.bisect_widest() {
            prop_assert_eq!(&l.volume() + &r.volume(), b.volume());
        }
    }
}
