//! Closed intervals with exact rational endpoints.
//!
//! Intervals are the central abstraction of the paper's §3: interval numerals
//! `[a, b]` replace real numerals, `sample` consumes an interval from an
//! interval trace, and primitive functions act on intervals through their
//! *interval-preserving* lift `f̂` (Definition 3.1). This module provides the
//! interval datatype together with exact lifts for the arithmetic primitives
//! and conservative (outward-rounded) enclosures for the transcendental ones
//! (`exp`, the sigmoid `sig`), which Lemma 3.2 guarantees are interval
//! preserving because they are continuous.

use crate::rational::Rational;
use std::fmt;

/// A closed interval `[lo, hi]` with rational endpoints (`lo <= hi`).
///
/// # Examples
///
/// ```
/// use probterm_numerics::{Interval, Rational};
///
/// let a = Interval::from_ratios(0, 1, 1, 2); // [0, 1/2]
/// let b = Interval::from_ratios(1, 4, 3, 4); // [1/4, 3/4]
/// let sum = a.add(&b);
/// assert_eq!(sum, Interval::from_ratios(1, 4, 5, 4));
/// assert_eq!(a.width(), Rational::from_ratio(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Rational,
    hi: Rational,
}

impl Interval {
    /// Constructs the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Rational, hi: Rational) -> Interval {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Constructs the degenerate (point) interval `[v, v]`.
    pub fn point(v: Rational) -> Interval {
        Interval { lo: v.clone(), hi: v }
    }

    /// Constructs `[a/b, c/d]` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if a denominator is zero or the endpoints are out of order.
    pub fn from_ratios(a: i64, b: i64, c: i64, d: i64) -> Interval {
        Interval::new(Rational::from_ratio(a, b), Rational::from_ratio(c, d))
    }

    /// The closed unit interval `[0, 1]`.
    pub fn unit() -> Interval {
        Interval::new(Rational::zero(), Rational::one())
    }

    /// Lower endpoint.
    pub fn lo(&self) -> &Rational {
        &self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> &Rational {
        &self.hi
    }

    /// Destructures into `(lo, hi)`.
    pub fn into_endpoints(self) -> (Rational, Rational) {
        (self.lo, self.hi)
    }

    /// Width `hi - lo` of the interval.
    pub fn width(&self) -> Rational {
        &self.hi - &self.lo
    }

    /// Midpoint `(lo + hi) / 2`.
    pub fn midpoint(&self) -> Rational {
        (&self.lo + &self.hi) * Rational::from_ratio(1, 2)
    }

    /// Returns `true` if the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` if `v` lies in the interval.
    pub fn contains(&self, v: &Rational) -> bool {
        &self.lo <= v && v <= &self.hi
    }

    /// Returns `true` if `other` is contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Returns `true` if the two intervals are *almost disjoint*, i.e. their
    /// intersection contains at most one point (paper §4, "almost disjoint").
    pub fn almost_disjoint(&self, other: &Interval) -> bool {
        self.hi <= other.lo || other.hi <= self.lo
    }

    /// Intersection of two intervals, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.clone().max(other.lo.clone());
        let hi = self.hi.clone().min(other.hi.clone());
        if lo <= hi {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }

    /// Smallest interval containing both inputs (the interval hull).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(
            self.lo.clone().min(other.lo.clone()),
            self.hi.clone().max(other.hi.clone()),
        )
    }

    /// Splits the interval into two halves at the midpoint.
    pub fn bisect(&self) -> (Interval, Interval) {
        let mid = self.midpoint();
        (
            Interval::new(self.lo.clone(), mid.clone()),
            Interval::new(mid, self.hi.clone()),
        )
    }

    /// Splits into `n` equal-width pieces (`n >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split(&self, n: usize) -> Vec<Interval> {
        assert!(n >= 1, "cannot split into zero pieces");
        let step = self.width() * Rational::from_ratio(1, n as i64);
        let mut pieces = Vec::with_capacity(n);
        let mut lo = self.lo.clone();
        for i in 0..n {
            let hi = if i + 1 == n {
                self.hi.clone()
            } else {
                &lo + &step
            };
            pieces.push(Interval::new(lo.clone(), hi.clone()));
            lo = hi;
        }
        pieces
    }

    /// Interval addition `[a,b] + [c,d] = [a+c, b+d]`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(&self.lo + &other.lo, &self.hi + &other.hi)
    }

    /// Interval subtraction `[a,b] - [c,d] = [a-d, b-c]`.
    pub fn sub(&self, other: &Interval) -> Interval {
        Interval::new(&self.lo - &other.hi, &self.hi - &other.lo)
    }

    /// Interval negation.
    pub fn neg(&self) -> Interval {
        Interval::new(-&self.hi, -&self.lo)
    }

    /// Interval multiplication (exact: min/max over endpoint products).
    pub fn mul(&self, other: &Interval) -> Interval {
        let candidates = [
            &self.lo * &other.lo,
            &self.lo * &other.hi,
            &self.hi * &other.lo,
            &self.hi * &other.hi,
        ];
        let mut lo = candidates[0].clone();
        let mut hi = candidates[0].clone();
        for c in &candidates[1..] {
            if *c < lo {
                lo = c.clone();
            }
            if *c > hi {
                hi = c.clone();
            }
        }
        Interval::new(lo, hi)
    }

    /// Scales the interval by a rational constant.
    pub fn scale(&self, k: &Rational) -> Interval {
        if k.is_negative() {
            Interval::new(&self.hi * k, &self.lo * k)
        } else {
            Interval::new(&self.lo * k, &self.hi * k)
        }
    }

    /// Translates the interval by a rational constant.
    pub fn translate(&self, k: &Rational) -> Interval {
        Interval::new(&self.lo + k, &self.hi + k)
    }

    /// Interval absolute value.
    pub fn abs(&self) -> Interval {
        if !self.lo.is_negative() {
            self.clone()
        } else if !self.hi.is_positive() {
            self.neg()
        } else {
            Interval::new(Rational::zero(), self.lo.abs().max(self.hi.abs()))
        }
    }

    /// Interval minimum.
    pub fn min_iv(&self, other: &Interval) -> Interval {
        Interval::new(
            self.lo.clone().min(other.lo.clone()),
            self.hi.clone().min(other.hi.clone()),
        )
    }

    /// Interval maximum.
    pub fn max_iv(&self, other: &Interval) -> Interval {
        Interval::new(
            self.lo.clone().max(other.lo.clone()),
            self.hi.clone().max(other.hi.clone()),
        )
    }

    /// Conservative enclosure of `exp` over the interval.
    ///
    /// The result is outward rounded using exactly-represented `f64` bounds,
    /// so it always contains the true image (monotonicity of `exp`).
    pub fn exp(&self) -> Interval {
        Interval::new(
            outward_lo(self.lo.to_f64().exp()),
            outward_hi(self.hi.to_f64().exp()),
        )
    }

    /// Conservative enclosure of the logistic sigmoid `sig(x) = 1/(1+e^{-x})`,
    /// clamped to `[0, 1]` (the sigmoid's true range).
    pub fn sig(&self) -> Interval {
        let lo = outward_lo(sigmoid(self.lo.to_f64())).max(Rational::zero());
        let hi = outward_hi(sigmoid(self.hi.to_f64())).min(Rational::one());
        Interval::new(lo, hi)
    }

    /// Conservative enclosure of `log` (natural logarithm) over the interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval contains non-positive values.
    pub fn log(&self) -> Interval {
        assert!(
            self.lo.is_positive(),
            "log enclosure requires a strictly positive interval"
        );
        Interval::new(
            outward_lo(self.lo.to_f64().ln()),
            outward_hi(self.hi.to_f64().ln()),
        )
    }

    /// Clamps the interval into `[0, 1]` if it overlaps it; returns `None`
    /// when the intersection with the unit interval is empty.
    pub fn clamp_unit(&self) -> Option<Interval> {
        self.intersect(&Interval::unit())
    }

    /// Returns `true` if the whole interval is `<= 0` (the conditional's
    /// then-branch is certain, Fig. 3).
    pub fn certainly_nonpositive(&self) -> bool {
        !self.hi.is_positive()
    }

    /// Returns `true` if the whole interval is `> 0` (the conditional's
    /// else-branch is certain, Fig. 3).
    pub fn certainly_positive(&self) -> bool {
        self.lo.is_positive()
    }

    /// Returns a compact display of the interval using decimal rendering.
    pub fn to_decimal_string(&self, digits: usize) -> String {
        format!(
            "[{}, {}]",
            self.lo.to_decimal_string(digits),
            self.hi.to_decimal_string(digits)
        )
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Rounds a float *down* by a relative ulp-scale margin and converts exactly.
fn outward_lo(v: f64) -> Rational {
    let margin = (v.abs() * 1e-12).max(1e-300);
    Rational::from_f64_exact(v - margin)
}

/// Rounds a float *up* by a relative ulp-scale margin and converts exactly.
fn outward_hi(v: f64) -> Rational {
    let margin = (v.abs() * 1e-12).max(1e-300);
    Rational::from_f64_exact(v + margin)
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// An axis-aligned box, i.e. a product of intervals. Boxes are the shape of
/// constraint solutions used throughout §3 (interval separability talks about
/// countable unions of boxes) and of interval traces.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntervalBox {
    dims: Vec<Interval>,
}

impl IntervalBox {
    /// The empty (0-dimensional) box, which has volume 1 by convention.
    pub fn empty() -> IntervalBox {
        IntervalBox { dims: Vec::new() }
    }

    /// Constructs a box from its per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> IntervalBox {
        IntervalBox { dims }
    }

    /// The unit hypercube `[0,1]^n`.
    pub fn unit(n: usize) -> IntervalBox {
        IntervalBox {
            dims: vec![Interval::unit(); n],
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.dims
    }

    /// Volume of the box (product of widths); the 0-dimensional box has volume 1.
    pub fn volume(&self) -> Rational {
        self.dims.iter().map(|iv| iv.width()).product()
    }

    /// Appends a dimension.
    pub fn push(&mut self, iv: Interval) {
        self.dims.push(iv);
    }

    /// Returns `true` if the point (given per dimension) lies in the box.
    pub fn contains_point(&self, point: &[Rational]) -> bool {
        point.len() == self.dims.len()
            && self
                .dims
                .iter()
                .zip(point.iter())
                .all(|(iv, v)| iv.contains(v))
    }

    /// Componentwise intersection; `None` if any component is empty.
    pub fn intersect(&self, other: &IntervalBox) -> Option<IntervalBox> {
        if self.dim() != other.dim() {
            return None;
        }
        let mut dims = Vec::with_capacity(self.dim());
        for (a, b) in self.dims.iter().zip(other.dims.iter()) {
            dims.push(a.intersect(b)?);
        }
        Some(IntervalBox::new(dims))
    }

    /// Bisects the widest dimension, returning the two halves.
    ///
    /// Returns `None` if the box is 0-dimensional or all dimensions are points.
    pub fn bisect_widest(&self) -> Option<(IntervalBox, IntervalBox)> {
        let widest = self
            .dims
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.width().cmp(&b.width()))?;
        if widest.1.is_point() {
            return None;
        }
        let idx = widest.0;
        let (lo_half, hi_half) = self.dims[idx].bisect();
        let mut left = self.dims.clone();
        let mut right = self.dims.clone();
        left[idx] = lo_half;
        right[idx] = hi_half;
        Some((IntervalBox::new(left), IntervalBox::new(right)))
    }
}

impl fmt::Display for IntervalBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, iv) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Interval> for IntervalBox {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> IntervalBox {
        IntervalBox::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64, c: i64, d: i64) -> Interval {
        Interval::from_ratios(a, b, c, d)
    }

    #[test]
    fn construction_and_accessors() {
        let i = iv(1, 2, 3, 4);
        assert_eq!(*i.lo(), Rational::from_ratio(1, 2));
        assert_eq!(*i.hi(), Rational::from_ratio(3, 4));
        assert_eq!(i.width(), Rational::from_ratio(1, 4));
        assert_eq!(i.midpoint(), Rational::from_ratio(5, 8));
        assert!(Interval::point(Rational::one()).is_point());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_endpoints_panic() {
        let _ = iv(3, 4, 1, 2);
    }

    #[test]
    fn arithmetic() {
        let a = iv(0, 1, 1, 2);
        let b = iv(1, 4, 3, 4);
        assert_eq!(a.add(&b), iv(1, 4, 5, 4));
        assert_eq!(a.sub(&b), iv(-3, 4, 1, 4));
        assert_eq!(a.neg(), iv(-1, 2, 0, 1));
        assert_eq!(a.mul(&b), iv(0, 1, 3, 8));
        // Mixed-sign multiplication.
        let c = iv(-1, 1, 2, 1);
        let d = iv(-3, 1, 1, 1);
        assert_eq!(c.mul(&d), iv(-6, 1, 3, 1));
    }

    #[test]
    fn scale_translate_abs() {
        let a = iv(-1, 1, 2, 1);
        assert_eq!(a.scale(&Rational::from_int(-2)), iv(-4, 1, 2, 1));
        assert_eq!(a.translate(&Rational::one()), iv(0, 1, 3, 1));
        assert_eq!(a.abs(), iv(0, 1, 2, 1));
        assert_eq!(iv(-3, 1, -1, 1).abs(), iv(1, 1, 3, 1));
        assert_eq!(iv(1, 1, 3, 1).abs(), iv(1, 1, 3, 1));
    }

    #[test]
    fn set_operations() {
        let a = iv(0, 1, 1, 2);
        let b = iv(1, 4, 3, 4);
        assert_eq!(a.intersect(&b), Some(iv(1, 4, 1, 2)));
        assert_eq!(a.hull(&b), iv(0, 1, 3, 4));
        assert!(a.intersect(&iv(2, 1, 3, 1)).is_none());
        assert!(a.contains(&Rational::from_ratio(1, 3)));
        assert!(!a.contains(&Rational::from_ratio(2, 3)));
        assert!(Interval::unit().contains_interval(&a));
        assert!(iv(0, 1, 1, 2).almost_disjoint(&iv(1, 2, 1, 1)));
        assert!(!iv(0, 1, 3, 4).almost_disjoint(&iv(1, 2, 1, 1)));
    }

    #[test]
    fn splitting() {
        let u = Interval::unit();
        let (l, r) = u.bisect();
        assert_eq!(l, iv(0, 1, 1, 2));
        assert_eq!(r, iv(1, 2, 1, 1));
        let parts = u.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[2], iv(1, 2, 3, 4));
        let total: Rational = parts.iter().map(|p| p.width()).sum();
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn branch_certainty() {
        assert!(iv(-2, 1, 0, 1).certainly_nonpositive());
        assert!(!iv(-2, 1, 1, 2).certainly_nonpositive());
        assert!(iv(1, 4, 1, 2).certainly_positive());
        assert!(!iv(0, 1, 1, 2).certainly_positive());
    }

    #[test]
    fn transcendental_enclosures() {
        let a = iv(0, 1, 1, 1);
        let e = a.exp();
        assert!(e.lo().to_f64() <= 1.0 && e.hi().to_f64() >= std::f64::consts::E);
        let s = a.sig();
        assert!(s.lo().to_f64() <= 0.5 && s.hi().to_f64() >= 0.731);
        assert!(s.hi() <= &Rational::one());
        let l = iv(1, 1, 2, 1).log();
        assert!(l.lo().to_f64() <= 0.0 + 1e-9 && l.hi().to_f64() >= std::f64::consts::LN_2);
    }

    #[test]
    fn boxes() {
        let b = IntervalBox::new(vec![iv(0, 1, 1, 2), iv(0, 1, 1, 3)]);
        assert_eq!(b.volume(), Rational::from_ratio(1, 6));
        assert_eq!(IntervalBox::empty().volume(), Rational::one());
        assert_eq!(IntervalBox::unit(3).volume(), Rational::one());
        assert!(b.contains_point(&[Rational::from_ratio(1, 4), Rational::from_ratio(1, 4)]));
        assert!(!b.contains_point(&[Rational::from_ratio(3, 4), Rational::from_ratio(1, 4)]));
        let (l, r) = b.bisect_widest().unwrap();
        assert_eq!(&l.volume() + &r.volume(), b.volume());
        let point_box = IntervalBox::new(vec![Interval::point(Rational::one())]);
        assert!(point_box.bisect_widest().is_none());
    }

    #[test]
    fn box_intersection() {
        let a = IntervalBox::unit(2);
        let b = IntervalBox::new(vec![iv(1, 2, 3, 2), iv(1, 4, 1, 2)]);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c.intervals()[0], iv(1, 2, 1, 1));
        assert_eq!(c.intervals()[1], iv(1, 4, 1, 2));
        assert!(a.intersect(&IntervalBox::unit(3)).is_none());
    }
}
