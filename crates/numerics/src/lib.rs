//! Exact numerics for the `probterm` workspace.
//!
//! This crate provides the arithmetic substrate used by every termination
//! analysis in the reproduction of *"On Probabilistic Termination of
//! Functional Programs with Continuous Distributions"* (Beutner & Ong,
//! PLDI 2021):
//!
//! * [`BigUint`] / [`BigInt`] — arbitrary-precision integers,
//! * [`Rational`] — exact rational numbers (probabilities, weights, volumes),
//! * [`Interval`] / [`IntervalBox`] — closed rational intervals and boxes, the
//!   carriers of the interval-trace semantics of §3.
//!
//! # Examples
//!
//! ```
//! use probterm_numerics::{Interval, Rational};
//!
//! // The weight of the interval trace [0,1/2]·[1/4,1] (paper §3.2).
//! let trace = [Interval::from_ratios(0, 1, 1, 2), Interval::from_ratios(1, 4, 1, 1)];
//! let weight: Rational = trace.iter().map(|iv| iv.width()).product();
//! assert_eq!(weight, Rational::from_ratio(3, 8));
//! ```

#![warn(missing_docs)]

mod bigint;
mod interval;
mod rational;

pub use bigint::{BigInt, BigUint, Sign};
pub use interval::{Interval, IntervalBox};
pub use rational::Rational;
