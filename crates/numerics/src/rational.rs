//! Exact rational arithmetic.
//!
//! [`Rational`] values are the numeric backbone of every analysis in this
//! workspace: branch probabilities, interval endpoints, weights of interval
//! traces, polytope volumes and expected-step counts are all exact rationals,
//! exactly as the paper's prototype does in §7.1 ("Our tool computes rational
//! lower-bounds to avoid rounding errors").

use crate::bigint::{BigInt, BigUint, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(|num|, den) = 1`.
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
///
/// let third = Rational::from_ratio(1, 3);
/// let sum = &third + &third + &third;
/// assert_eq!(sum, Rational::one());
/// assert_eq!(Rational::from_ratio(2, 4), Rational::from_ratio(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// The value `1/2`.
    pub fn half() -> Rational {
        Rational::from_ratio(1, 2)
    }

    /// Constructs `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Rational {
        assert!(den != 0, "zero denominator");
        let sign_flip = den < 0;
        let num = if sign_flip { BigInt::from(-num) } else { BigInt::from(num) };
        let den = BigUint::from(den.unsigned_abs());
        Rational::from_bigint_ratio(num, BigInt::from(den))
    }

    /// Constructs `num / den` from big integers, normalising signs and the gcd.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigint_ratio(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "zero denominator");
        let (num, den_mag) = if den.is_negative() {
            (-num, den.into_magnitude())
        } else {
            (num, den.into_magnitude())
        };
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.magnitude().gcd(&den_mag);
        let num = BigInt::from_sign_mag(num.sign(), num.magnitude().div_rem(&g).0);
        let den = den_mag.div_rem(&g).0;
        Rational { num, den }
    }

    /// Constructs an integer-valued rational.
    pub fn from_int(v: i64) -> Rational {
        Rational {
            num: BigInt::from(v),
            den: BigUint::one(),
        }
    }

    /// Constructs a rational from a big integer.
    pub fn from_bigint(v: BigInt) -> Rational {
        Rational {
            num: v,
            den: BigUint::one(),
        }
    }

    /// Numerator (signed, coprime with the denominator).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (strictly positive).
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.den.is_one() && self.num == BigInt::one()
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Additive inverse.
    pub fn negated(&self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::from_bigint_ratio(
            BigInt::from(self.den.clone()),
            self.num.clone(),
        )
    }

    /// Adds two rationals.
    pub fn add_ref(&self, other: &Rational) -> Rational {
        // a/b + c/d = (a d + c b) / (b d)
        let num = &(&self.num * &BigInt::from(other.den.clone()))
            + &(&other.num * &BigInt::from(self.den.clone()));
        let den = BigInt::from(self.den.mul_ref(&other.den));
        Rational::from_bigint_ratio(num, den)
    }

    /// Subtracts `other` from `self`.
    pub fn sub_ref(&self, other: &Rational) -> Rational {
        self.add_ref(&other.negated())
    }

    /// Multiplies two rationals.
    pub fn mul_ref(&self, other: &Rational) -> Rational {
        let num = &self.num * &other.num;
        let den = BigInt::from(self.den.mul_ref(&other.den));
        Rational::from_bigint_ratio(num, den)
    }

    /// Divides `self` by `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_ref(&self, other: &Rational) -> Rational {
        self.mul_ref(&other.recip())
    }

    /// Raises to an integer power (negative exponents allowed for nonzero values).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let positive = self.pow_u32(exp.unsigned_abs());
        if exp > 0 {
            positive
        } else {
            positive.recip()
        }
    }

    fn pow_u32(&self, exp: u32) -> Rational {
        Rational {
            num: self.num.pow(exp),
            den: self.den.pow(exp),
        }
    }

    /// The minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Floor as a big integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&BigInt::from(self.den.clone()));
        if self.num.is_negative() && !r.is_zero() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling as a big integer.
    pub fn ceil(&self) -> BigInt {
        -((&-self).floor())
    }

    /// Best-effort conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale to keep precision when both parts are huge.
        let nb = self.num.magnitude().bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let shift = (nb.max(db) - 512).max(0) as u64;
        let n = self.num.magnitude().shr_bits(shift).to_f64();
        let d = self.den.shr_bits(shift).to_f64();
        let v = n / d;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Converts a finite `f64` into the exactly-represented rational.
    ///
    /// # Panics
    ///
    /// Panics if the input is not finite.
    pub fn from_f64_exact(v: f64) -> Rational {
        assert!(v.is_finite(), "cannot convert non-finite float to rational");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign = if (bits >> 63) == 1 { -1i64 } else { 1i64 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = bits & ((1u64 << 52) - 1);
        let (mantissa, exponent) = if exponent == 0 {
            (mantissa, -1074i64)
        } else {
            (mantissa | (1u64 << 52), exponent - 1075)
        };
        let mag = BigUint::from(mantissa);
        let num = BigInt::from_sign_mag(
            if sign > 0 { Sign::Positive } else { Sign::Negative },
            mag,
        );
        if exponent >= 0 {
            Rational::from_bigint_ratio(
                BigInt::from_sign_mag(num.sign(), num.magnitude().shl_bits(exponent as u64)),
                BigInt::one(),
            )
        } else {
            Rational::from_bigint_ratio(
                num,
                BigInt::from(BigUint::one().shl_bits((-exponent) as u64)),
            )
        }
    }

    /// Parses a decimal literal such as `"0.25"`, `"-3"`, `"7/9"`.
    pub fn parse(s: &str) -> Option<Rational> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num = Rational::parse_decimal(n)?;
            let den = Rational::parse_decimal(d)?;
            if den.is_zero() {
                return None;
            }
            return Some(num.div_ref(&den));
        }
        Rational::parse_decimal(s)
    }

    fn parse_decimal(s: &str) -> Option<Rational> {
        let s = s.trim();
        let (neg, rest) = match s.strip_prefix('-') {
            Some(r) => (true, r),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if rest.is_empty() {
            return None;
        }
        let (int_part, frac_part) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        let int_part = if int_part.is_empty() { "0" } else { int_part };
        let int_val = BigUint::from_decimal(int_part)?;
        let mut num = BigInt::from(int_val);
        let mut den = BigUint::one();
        if !frac_part.is_empty() {
            let frac_val = BigUint::from_decimal(frac_part)?;
            den = BigUint::from(10u64).pow(frac_part.len() as u32);
            num = BigInt::from(num.into_magnitude().mul_ref(&den)) + BigInt::from(frac_val);
        }
        let r = Rational::from_bigint_ratio(num, BigInt::from(den));
        Some(if neg { r.negated() } else { r })
    }

    /// Renders the value in decimal with `digits` fractional digits,
    /// truncated toward zero (matching how the paper prints lower bounds).
    pub fn to_decimal_string(&self, digits: usize) -> String {
        let scale = BigUint::from(10u64).pow(digits as u32);
        let scaled = (&self.num.abs() * &BigInt::from(scale)).div_rem(&BigInt::from(self.den.clone())).0;
        let scaled_str = scaled.to_string();
        let scaled_str = if scaled_str.len() <= digits {
            format!("{}{}", "0".repeat(digits + 1 - scaled_str.len()), scaled_str)
        } else {
            scaled_str
        };
        let (ip, fp) = scaled_str.split_at(scaled_str.len() - digits);
        let sign = if self.is_negative() { "-" } else { "" };
        if digits == 0 {
            format!("{}{}", sign, ip)
        } else {
            format!("{}{}.{}", sign, ip, fp)
        }
    }

    /// Returns `true` if the value lies in the closed unit interval.
    pub fn in_unit_interval(&self) -> bool {
        !self.is_negative() && *self <= Rational::one()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from_int(v)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Rational {
        Rational::from_int(v as i64)
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational::from_bigint(v)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a d ? c b   (b, d > 0)
        let lhs = &self.num * &BigInt::from(other.den.clone());
        let rhs = &other.num * &BigInt::from(self.den.clone());
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $impl_method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$impl_method(&rhs)
            }
        }
        impl<'a> $trait<&'a Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &'a Rational) -> Rational {
                self.$impl_method(rhs)
            }
        }
        impl<'a> $trait<&'a Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &'a Rational) -> Rational {
                self.$impl_method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$impl_method(&rhs)
            }
        }
    };
}

impl_binop!(Add, add, add_ref);
impl_binop!(Sub, sub, sub_ref);
impl_binop!(Mul, mul, mul_ref);
impl_binop!(Div, div, div_ref);

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = self.add_ref(&rhs);
    }
}

impl<'a> AddAssign<&'a Rational> for Rational {
    fn add_assign(&mut self, rhs: &'a Rational) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = self.sub_ref(&rhs);
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = self.mul_ref(&rhs);
    }
}

impl<'a> MulAssign<&'a Rational> for Rational {
    fn mul_assign(&mut self, rhs: &'a Rational) {
        *self = self.mul_ref(rhs);
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.negated()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.negated()
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> std::iter::Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl std::iter::Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::one(), |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, -3), Rational::from_int(-2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 3) + r(1, 6), r(1, 2));
        assert_eq!(r(1, 3) - r(1, 2), r(-1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), Rational::from_int(2));
        assert_eq!(-r(3, 7), r(-3, 7));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(-5, 2) < Rational::zero());
    }

    #[test]
    fn powers_and_reciprocals() {
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Rational::one());
        assert_eq!(r(-1, 2).pow(3), r(-1, 8));
        assert_eq!(r(3, 4).recip(), r(4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor().to_i64(), Some(3));
        assert_eq!(r(7, 2).ceil().to_i64(), Some(4));
        assert_eq!(r(-7, 2).floor().to_i64(), Some(-4));
        assert_eq!(r(-7, 2).ceil().to_i64(), Some(-3));
        assert_eq!(r(4, 2).floor().to_i64(), Some(2));
        assert_eq!(r(4, 2).ceil().to_i64(), Some(2));
    }

    #[test]
    fn parsing() {
        assert_eq!(Rational::parse("0.25"), Some(r(1, 4)));
        assert_eq!(Rational::parse("-1.5"), Some(r(-3, 2)));
        assert_eq!(Rational::parse("7/9"), Some(r(7, 9)));
        assert_eq!(Rational::parse("3"), Some(Rational::from_int(3)));
        assert_eq!(Rational::parse(".5"), Some(r(1, 2)));
        assert_eq!(Rational::parse("1/0"), None);
        assert_eq!(Rational::parse("abc"), None);
    }

    #[test]
    fn decimal_rendering() {
        assert_eq!(r(1, 3).to_decimal_string(10), "0.3333333333");
        assert_eq!(r(-1, 8).to_decimal_string(3), "-0.125");
        assert_eq!(Rational::from_int(2).to_decimal_string(2), "2.00");
        assert_eq!(r(1, 2).to_decimal_string(0), "0");
    }

    #[test]
    fn f64_roundtrips() {
        for v in [0.5f64, 0.25, -0.125, 3.0, 0.1] {
            let q = Rational::from_f64_exact(v);
            assert_eq!(q.to_f64(), v);
        }
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn sums_and_products() {
        let xs = vec![r(1, 4), r(1, 4), r(1, 2)];
        let s: Rational = xs.iter().sum();
        assert_eq!(s, Rational::one());
        let p: Rational = xs.into_iter().product();
        assert_eq!(p, r(1, 32));
    }

    #[test]
    fn unit_interval_check() {
        assert!(r(1, 2).in_unit_interval());
        assert!(Rational::zero().in_unit_interval());
        assert!(Rational::one().in_unit_interval());
        assert!(!r(3, 2).in_unit_interval());
        assert!(!r(-1, 2).in_unit_interval());
    }
}
