//! Arbitrary-precision unsigned and signed integers.
//!
//! The termination analyses in this workspace manipulate exact rational
//! probabilities (the paper reports "rational lower-bounds to avoid rounding
//! errors", §7.1). Products of branch probabilities and Lasserre-style volume
//! computations quickly exceed the range of machine integers, so we implement a
//! small, dependency-free big-integer library: [`BigUint`] (magnitude) and
//! [`BigInt`] (sign + magnitude).
//!
//! The implementation favours clarity over raw speed: schoolbook
//! multiplication and Knuth-style long division over 64-bit limbs are more than
//! fast enough for the operand sizes produced by the benchmarks (a few hundred
//! bits at most).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Returns the opposite sign (`Zero` stays `Zero`).
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Multiplies two signs.
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs; the value
/// zero is represented by an empty limb vector.
///
/// # Examples
///
/// ```
/// use probterm_numerics::BigUint;
///
/// let a = BigUint::from(10u64).pow(30);
/// let b = BigUint::from(7u64);
/// let (q, r) = a.div_rem(&b);
/// assert_eq!(&q * &b + r, a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if this value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Constructs a value from little-endian limbs, normalising trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Returns bit `i` (little-endian indexing).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns `true` if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().map(|l| l % 2 == 0).unwrap_or(true)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Compares two magnitudes.
    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Adds `other` into `self`.
    pub fn add_assign_ref(&mut self, other: &BigUint) {
        let mut carry = 0u64;
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        for i in 0..n {
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            self.cmp_mag(other) != Ordering::Less,
            "BigUint subtraction underflow"
        );
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            self.limbs[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Multiplies two magnitudes (schoolbook).
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiplies by a single machine word.
    pub fn mul_u64(&self, w: u64) -> BigUint {
        if w == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = (a as u128) * (w as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let slice = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(slice.len());
        if bit_shift == 0 {
            out.extend_from_slice(slice);
        } else {
            for i in 0..slice.len() {
                let hi = if i + 1 < slice.len() {
                    slice[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push((slice[i] >> bit_shift) | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Divides by a single machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn div_rem_u64(&self, w: u64) -> (BigUint, u64) {
        assert!(w != 0, "division by zero");
        let mut rem = 0u128;
        let mut out = vec![0u64; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / w as u128) as u64;
            rem = cur % w as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Divides `self` by `other`, returning `(quotient, remainder)`.
    ///
    /// Uses a bitwise long division which is simple and entirely adequate for
    /// the operand sizes that the termination analyses produce.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigUint) -> (BigUint, BigUint) {
        assert!(!other.is_zero(), "division by zero");
        if other.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(other.limbs[0]);
            return (q, BigUint::from(r));
        }
        match self.cmp_mag(other) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        let shift = self.bits() - other.bits();
        let mut remainder = self.clone();
        let mut quotient_limbs = vec![0u64; (shift / 64 + 1) as usize];
        let mut divisor = other.shl_bits(shift);
        let mut i = shift as i64;
        while i >= 0 {
            if remainder.cmp_mag(&divisor) != Ordering::Less {
                remainder.sub_assign_ref(&divisor);
                quotient_limbs[(i / 64) as usize] |= 1u64 << (i % 64);
            }
            divisor = divisor.shr_bits(1);
            i -= 1;
        }
        (BigUint::from_limbs(quotient_limbs), remainder)
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Remove common factors of two.
        let mut shift = 0u64;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a.cmp_mag(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b.sub_assign_ref(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl_bits(shift)
    }

    /// Raises the value to the power `exp`.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Best-effort conversion to `f64` (may overflow to `INFINITY`).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 18446744073709551616.0 + l as f64;
        }
        acc
    }

    /// Attempts a lossless conversion to `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Attempts a lossless conversion to `u128`.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Parses a decimal string.
    pub fn from_decimal(s: &str) -> Option<BigUint> {
        if s.is_empty() {
            return None;
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let d = c.to_digit(10)?;
            acc = acc.mul_u64(10);
            acc.add_assign_ref(&BigUint::from(d as u64));
        }
        Some(acc)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> BigUint {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> BigUint {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> BigUint {
        BigUint::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (i, chunk) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{:019}", chunk));
            }
        }
        write!(f, "{}", s)
    }
}

impl<'a> Add<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &'a BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign for BigUint {
    fn add_assign(&mut self, rhs: BigUint) {
        self.add_assign_ref(&rhs);
    }
}

impl<'a> Sub<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &'a BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: BigUint) -> BigUint {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl SubAssign for BigUint {
    fn sub_assign(&mut self, rhs: BigUint) {
        self.sub_assign_ref(&rhs);
    }
}

impl<'a> Mul<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &'a BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl MulAssign for BigUint {
    fn mul_assign(&mut self, rhs: BigUint) {
        *self = self.mul_ref(&rhs);
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use probterm_numerics::BigInt;
///
/// let a = BigInt::from(-7i64);
/// let b = BigInt::from(3i64);
/// assert_eq!((&a * &b).to_string(), "-21");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> BigInt {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// The value `-1`.
    pub fn neg_one() -> BigInt {
        BigInt {
            sign: Sign::Negative,
            mag: BigUint::one(),
        }
    }

    /// Constructs a signed integer from a sign and magnitude.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> BigInt {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            let sign = if sign == Sign::Zero { Sign::Positive } else { sign };
            BigInt { sign, mag }
        }
    }

    /// Returns the sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns the magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes the value and returns its magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` if zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` if strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(Sign::Positive, self.mag.clone())
    }

    /// Best-effort conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            Sign::Zero => 0.0,
            Sign::Positive => m,
        }
    }

    /// Attempts a lossless conversion to `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m <= i64::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Multiplies two integers.
    pub fn mul_ref(&self, other: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.mul(other.sign), self.mag.mul_ref(&other.mag))
    }

    /// Adds two integers.
    pub fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &other.mag),
            _ => match self.mag.cmp_mag(&other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(self.sign, &self.mag - &other.mag),
                Ordering::Less => BigInt::from_sign_mag(other.sign, &other.mag - &self.mag),
            },
        }
    }

    /// Euclidean-style division truncated toward zero, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.mag.div_rem(&other.mag);
        (
            BigInt::from_sign_mag(self.sign.mul(other.sign), q),
            BigInt::from_sign_mag(self.sign, r),
        )
    }

    /// Greatest common divisor (non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigUint {
        self.mag.gcd(&other.mag)
    }

    /// Raises to the power `exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if self.is_negative() && exp % 2 == 1 {
            Sign::Negative
        } else if mag.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        BigInt::from_sign_mag(sign, mag)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(Sign::Positive, BigUint::from(v as u64)),
            Ordering::Less => {
                BigInt::from_sign_mag(Sign::Negative, BigUint::from((v as i128).unsigned_abs() as u64))
            }
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> BigInt {
        BigInt::from_sign_mag(Sign::Positive, BigUint::from(v))
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> BigInt {
        BigInt::from(v as i64)
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> BigInt {
        BigInt::from_sign_mag(Sign::Positive, v)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.mag.cmp_mag(&self.mag),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.mag.cmp_mag(&other.mag),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_sign_mag(self.sign.negate(), self.mag)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt::from_sign_mag(self.sign.negate(), self.mag.clone())
    }
}

impl<'a> Add<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &'a BigInt) -> BigInt {
        self.add_ref(rhs)
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        self.add_ref(&rhs)
    }
}

impl<'a> Sub<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &'a BigInt) -> BigInt {
        self.add_ref(&(-rhs))
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        self.add_ref(&(-rhs))
    }
}

impl<'a> Mul<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &'a BigInt) -> BigInt {
        self.mul_ref(rhs)
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        self.mul_ref(&rhs)
    }
}

impl Div for BigInt {
    type Output = BigInt;
    fn div(self, rhs: BigInt) -> BigInt {
        self.div_rem(&rhs).0
    }
}

impl Rem for BigInt {
    type Output = BigInt;
    fn rem(self, rhs: BigInt) -> BigInt {
        self.div_rem(&rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biguint_basic_arithmetic() {
        let a = BigUint::from(123456789012345678u64);
        let b = BigUint::from(987654321098765432u64);
        let sum = &a + &b;
        assert_eq!(sum.to_string(), "1111111110111111110");
        let prod = &a * &b;
        assert_eq!(prod.to_string(), "121932631137021794322511812221002896");
    }

    #[test]
    fn biguint_sub() {
        let a = BigUint::from(10u64).pow(25);
        let b = BigUint::from(1u64);
        let d = &a - &b;
        assert_eq!(d.to_string(), "9999999999999999999999999");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn biguint_sub_underflow_panics() {
        let a = BigUint::from(1u64);
        let b = BigUint::from(2u64);
        let _ = &a - &b;
    }

    #[test]
    fn biguint_div_rem_roundtrip() {
        let a = BigUint::from(10u64).pow(40);
        let b = BigUint::from(123456789u64).pow(2);
        let (q, r) = a.div_rem(&b);
        assert!(r.cmp_mag(&b) == Ordering::Less);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn biguint_division_by_larger_is_zero() {
        let a = BigUint::from(5u64);
        let b = BigUint::from(7u64);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn biguint_gcd() {
        let a = BigUint::from(48u64);
        let b = BigUint::from(36u64);
        assert_eq!(a.gcd(&b).to_string(), "12");
        let a = BigUint::from(2u64).pow(40).mul_u64(9);
        let b = BigUint::from(2u64).pow(35).mul_u64(15);
        assert_eq!(a.gcd(&b), BigUint::from(2u64).pow(35).mul_u64(3));
        assert_eq!(BigUint::zero().gcd(&BigUint::from(5u64)).to_string(), "5");
    }

    #[test]
    fn biguint_shifts() {
        let a = BigUint::from(1u64);
        assert_eq!(a.shl_bits(100).bits(), 101);
        assert_eq!(a.shl_bits(100).shr_bits(100), a);
        assert!(a.shr_bits(1).is_zero());
    }

    #[test]
    fn biguint_display_and_parse() {
        let s = "123456789012345678901234567890";
        let v = BigUint::from_decimal(s).unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(BigUint::from_decimal("0").unwrap(), BigUint::zero());
        assert!(BigUint::from_decimal("12a").is_none());
    }

    #[test]
    fn biguint_pow() {
        assert_eq!(BigUint::from(2u64).pow(10).to_u64(), Some(1024));
        assert_eq!(BigUint::from(3u64).pow(0).to_u64(), Some(1));
        assert_eq!(
            BigUint::from(10u64).pow(21).to_string(),
            "1000000000000000000000"
        );
    }

    #[test]
    fn bigint_signs() {
        let a = BigInt::from(-5i64);
        let b = BigInt::from(3i64);
        assert_eq!((&a + &b).to_string(), "-2");
        assert_eq!((&a - &b).to_string(), "-8");
        assert_eq!((&a * &b).to_string(), "-15");
        assert_eq!((-&a).to_string(), "5");
        assert!(a < b);
        assert!(BigInt::zero() > a);
    }

    #[test]
    fn bigint_div_rem_truncates_towards_zero() {
        let a = BigInt::from(-7i64);
        let b = BigInt::from(2i64);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_string(), "-3");
        assert_eq!(r.to_string(), "-1");
    }

    #[test]
    fn bigint_to_i64_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v));
        }
    }

    #[test]
    fn bigint_to_f64() {
        assert_eq!(BigInt::from(-3i64).to_f64(), -3.0);
        assert_eq!(BigInt::from(1u64 << 53).to_f64(), (1u64 << 53) as f64);
    }
}
