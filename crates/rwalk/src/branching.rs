//! Branching-process (Galton–Watson) view of non-affine recursion.
//!
//! A first-order fixpoint whose counting pattern is *independent of the
//! argument* behaves exactly like a Galton–Watson branching process: each
//! pending recursive call is an individual, and resolving it spawns `n` new
//! pending calls with the probability given by the counting distribution
//! (paper §5.3 and Appendix D, where the same decomposition appears as the
//! bijection between *number trees* and terminating runs of the walk).
//!
//! The probability of termination of the program is then the **extinction
//! probability** of the process — the least fixed point of its probability
//! generating function on `[0, 1]`. This gives closed forms for several
//! Table 1 rows (e.g. Ex. 1.1 with `p = 1/4` terminates with probability
//! exactly `1/3`) which the tests use to cross-validate the lower-bound
//! engine, and it re-derives the AST thresholds of §5 independently of
//! Theorem 5.4: extinction is almost sure iff the mean offspring number is at
//! most one (and the process is not the deterministic single-child process).

use crate::CountingDistribution;
use probterm_numerics::Rational;

/// The probability generating function `g(s) = Σₙ c(n)·sⁿ` of a counting
/// distribution, together with the branching-process quantities derived from
/// it.
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_rwalk::{CountingDistribution, GeneratingFunction};
///
/// // Ex. 1.1 (2) with p = 1/4: counting pattern 1/4·δ0 + 3/4·δ2.
/// let c = CountingDistribution::from_pairs([
///     (0, Rational::from_ratio(1, 4)),
///     (2, Rational::from_ratio(3, 4)),
/// ]);
/// let g = GeneratingFunction::new(&c);
/// // The program terminates with probability exactly 1/3.
/// assert_eq!(g.extinction_probability_exact(), Some(Rational::from_ratio(1, 3)));
/// assert!(!g.is_almost_surely_extinct());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratingFunction {
    /// Coefficients `c(0), c(1), …` (trailing zeros trimmed).
    coefficients: Vec<Rational>,
}

impl GeneratingFunction {
    /// Builds the generating function of `counting`.
    pub fn new(counting: &CountingDistribution) -> GeneratingFunction {
        let degree = counting.max_calls().unwrap_or(0) as usize;
        let mut coefficients = vec![Rational::zero(); degree + 1];
        for (n, p) in counting.iter() {
            coefficients[n as usize] = p.clone();
        }
        GeneratingFunction { coefficients }
    }

    /// The coefficients `c(0), c(1), …, c(d)` of the polynomial.
    pub fn coefficients(&self) -> &[Rational] {
        &self.coefficients
    }

    /// The degree of the polynomial (the maximal number of offspring / the
    /// recursive rank contribution of §5.4).
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// Evaluates `g(s)` exactly by Horner's rule.
    pub fn eval(&self, s: &Rational) -> Rational {
        let mut acc = Rational::zero();
        for c in self.coefficients.iter().rev() {
            acc = acc.mul_ref(s) + c.clone();
        }
        acc
    }

    /// Evaluates `g(s)` in floating point.
    pub fn eval_f64(&self, s: f64) -> f64 {
        let mut acc = 0.0;
        for c in self.coefficients.iter().rev() {
            acc = acc * s + c.to_f64();
        }
        acc
    }

    /// The mean offspring number `g'(1) = Σₙ n·c(n)`.
    pub fn mean_offspring(&self) -> Rational {
        self.coefficients
            .iter()
            .enumerate()
            .map(|(n, c)| Rational::from_int(n as i64).mul_ref(c))
            .sum()
    }

    /// Total probability mass `g(1)`. A deficit corresponds to the walk's
    /// failure state `⊥` (Definition 5.2) and makes extinction sub-certain.
    pub fn total_mass(&self) -> Rational {
        self.coefficients.iter().sum()
    }

    /// Whether the process dies out almost surely — the branching-process
    /// restatement of Theorem 5.4: full mass, not the deterministic
    /// single-child process `δ₁`, and mean offspring at most one.
    pub fn is_almost_surely_extinct(&self) -> bool {
        let is_dirac_one = self.coefficients.len() == 2
            && self.coefficients[0].is_zero()
            && self.coefficients[1].is_one();
        self.total_mass().is_one() && !is_dirac_one && self.mean_offspring() <= Rational::one()
    }

    /// The extinction probability as the limit of the Kleene iteration
    /// `q₀ = 0, qₖ₊₁ = g(qₖ)`, evaluated in floating point until two
    /// consecutive iterates differ by less than `tolerance` or `max_iter`
    /// iterations have been performed.
    pub fn extinction_probability_f64(&self, tolerance: f64, max_iter: usize) -> f64 {
        let mut q = 0.0f64;
        for _ in 0..max_iter {
            let next = self.eval_f64(q).clamp(0.0, 1.0);
            if (next - q).abs() < tolerance {
                return next;
            }
            q = next;
        }
        q
    }

    /// A monotonically increasing sequence of exact rational lower bounds on
    /// the extinction probability: the first `iterations` Kleene iterates
    /// `q₀ = 0, qₖ₊₁ = g(qₖ)`. Every entry is a sound lower bound on the
    /// termination probability of the corresponding program.
    ///
    /// Iterate sizes grow quickly (each step multiplies denominators), so this
    /// is intended for small iteration counts; use
    /// [`extinction_probability_f64`](Self::extinction_probability_f64) for
    /// tight numeric values.
    pub fn extinction_lower_bounds(&self, iterations: usize) -> Vec<Rational> {
        let mut out = Vec::with_capacity(iterations + 1);
        let mut q = Rational::zero();
        out.push(q.clone());
        for _ in 0..iterations {
            q = self.eval(&q);
            out.push(q.clone());
        }
        out
    }

    /// The exact extinction probability, when it has rational closed form:
    ///
    /// * for full-mass distributions supported on `{0, 1, 2}` the generating
    ///   equation `g(q) = q` is a quadratic with root `1`, so the extinction
    ///   probability is `min(1, c(0)/c(2))`;
    /// * for distributions with `c(0) = 0` (and some other offspring) the
    ///   process can never die out, so the answer is `0` (or `1` for the empty
    ///   distribution `δ₀` handled first);
    /// * distributions that already guarantee extinction return `1`.
    ///
    /// Returns `None` when no rational closed form is implemented (e.g. cubic
    /// support with mass deficit); callers should fall back to
    /// [`extinction_probability_f64`](Self::extinction_probability_f64).
    pub fn extinction_probability_exact(&self) -> Option<Rational> {
        if self.is_almost_surely_extinct() {
            return Some(Rational::one());
        }
        if self.coefficients.first().map(Rational::is_zero).unwrap_or(true) {
            // No chance of zero offspring: a started process never dies out.
            return Some(Rational::zero());
        }
        if self.total_mass().is_one() && self.degree() <= 2 {
            let c0 = self.coefficients[0].clone();
            let c2 = self
                .coefficients
                .get(2)
                .cloned()
                .unwrap_or_else(Rational::zero);
            if c2.is_zero() {
                // Affine case with full mass and positive stop probability:
                // geometric, extinction certain (already covered above unless
                // the mean is > 1, which cannot happen with degree ≤ 1).
                return Some(Rational::one());
            }
            let q = c0.div_ref(&c2);
            return Some(q.min(Rational::one()));
        }
        None
    }
}

/// Builds the generating function of the counting distribution and returns
/// its extinction probability in floating point — a convenience wrapper used
/// by the examples and the cross-validation tests.
pub fn extinction_probability(counting: &CountingDistribution) -> f64 {
    GeneratingFunction::new(counting).extinction_probability_f64(1e-12, 100_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    fn printer(p: Rational) -> CountingDistribution {
        CountingDistribution::from_pairs([(0, p.clone()), (2, Rational::one() - p)])
    }

    #[test]
    fn printer_extinction_probability_closed_form() {
        // Ex. 1.1 (2): q = min(1, p/(1-p)).
        for (p, expected) in [
            (r(1, 4), r(1, 3)),
            (r(1, 3), r(1, 2)),
            (r(2, 5), r(2, 3)),
            (r(1, 2), Rational::one()),
            (r(3, 4), Rational::one()),
        ] {
            let g = GeneratingFunction::new(&printer(p.clone()));
            assert_eq!(g.extinction_probability_exact(), Some(expected.clone()), "p = {p}");
            let numeric = g.extinction_probability_f64(1e-12, 200_000);
            // At the critical point p = 1/2 the Kleene iteration converges only
            // sub-geometrically, so allow a coarser numeric tolerance there.
            let tolerance = if expected.is_one() { 1e-4 } else { 1e-6 };
            assert!((numeric - expected.to_f64()).abs() < tolerance, "p = {p}: {numeric}");
        }
    }

    #[test]
    fn ast_threshold_matches_theorem_5_4() {
        for p in [r(1, 10), r(1, 4), r(49, 100), r(1, 2), r(3, 5), r(9, 10)] {
            let c = printer(p.clone());
            let g = GeneratingFunction::new(&c);
            assert_eq!(
                g.is_almost_surely_extinct(),
                c.shifted().is_ast(),
                "branching view and Theorem 5.4 must agree at p = {p}"
            );
        }
    }

    #[test]
    fn golden_ratio_term_extinction() {
        // gr (Table 1): three recursive calls with probability 1/2, none with
        // 1/2. The extinction equation q = 1/2 + 1/2·q³ has no rational root
        // below 1, so the exact solver declines and the Kleene iteration
        // converges to the inverse golden ratio (√5−1)/2 reported in Table 1.
        let c = CountingDistribution::from_pairs([(0, r(1, 2)), (3, r(1, 2))]);
        let g = GeneratingFunction::new(&c);
        assert_eq!(g.extinction_probability_exact(), None);
        let q = g.extinction_probability_f64(1e-12, 200_000);
        // Least positive root of q³ − 2q + 1 = (q − 1)(q² + q − 1): (√5−1)/2.
        let golden = (5.0f64.sqrt() - 1.0) / 2.0;
        assert!((q - golden).abs() < 1e-9, "got {q}");
    }

    #[test]
    fn three_print_threshold() {
        // 3print_p: counting pattern p·δ0 + (1−p)·δ3; AST iff p ≥ 2/3.
        for (p, expect) in [(r(2, 3), true), (r(3, 4), true), (r(3, 5), false)] {
            let c = CountingDistribution::from_pairs([(0, p.clone()), (3, Rational::one() - p.clone())]);
            let g = GeneratingFunction::new(&c);
            assert_eq!(g.is_almost_surely_extinct(), expect, "p = {p}");
            if !expect {
                let q = g.extinction_probability_f64(1e-12, 200_000);
                assert!(q < 1.0 - 1e-6);
            }
        }
    }

    #[test]
    fn kleene_iterates_are_monotone_lower_bounds() {
        let g = GeneratingFunction::new(&printer(r(1, 4)));
        let bounds = g.extinction_lower_bounds(12);
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "iterates must be monotone");
        }
        let limit = r(1, 3);
        for b in &bounds {
            assert!(*b <= limit, "every iterate is a lower bound");
        }
        assert!(bounds.last().unwrap() > &r(3, 10), "iterates approach 1/3");
    }

    #[test]
    fn no_stop_probability_means_no_extinction() {
        let c = CountingDistribution::from_pairs([(1, r(1, 2)), (2, r(1, 2))]);
        let g = GeneratingFunction::new(&c);
        assert_eq!(g.extinction_probability_exact(), Some(Rational::zero()));
        assert!(!g.is_almost_surely_extinct());
    }

    #[test]
    fn affine_full_mass_is_geometric_and_extinct() {
        let c = CountingDistribution::from_pairs([(0, r(1, 5)), (1, r(4, 5))]);
        let g = GeneratingFunction::new(&c);
        assert!(g.is_almost_surely_extinct());
        assert_eq!(g.extinction_probability_exact(), Some(Rational::one()));
        assert_eq!(g.mean_offspring(), r(4, 5));
    }

    #[test]
    fn mass_deficit_blocks_certain_extinction() {
        // 10% of runs fail outright (score failure / stuck): extinction < 1
        // even though the drift is favourable.
        let c = CountingDistribution::from_pairs([(0, r(9, 10))]);
        let g = GeneratingFunction::new(&c);
        assert!(!g.is_almost_surely_extinct());
        assert_eq!(g.extinction_probability_exact(), None);
        let q = g.extinction_probability_f64(1e-12, 1000);
        assert!((q - 0.9).abs() < 1e-9);
    }

    #[test]
    fn evaluation_and_accessors() {
        let c = CountingDistribution::from_pairs([(0, r(3, 5)), (2, r(1, 5)), (3, r(1, 5))]);
        let g = GeneratingFunction::new(&c);
        assert_eq!(g.degree(), 3);
        assert_eq!(g.coefficients().len(), 4);
        assert_eq!(g.eval(&Rational::one()), Rational::one());
        assert_eq!(g.eval(&Rational::zero()), r(3, 5));
        assert_eq!(g.total_mass(), Rational::one());
        assert_eq!(g.mean_offspring(), r(2, 5) + r(3, 5));
        assert!((g.eval_f64(0.5) - g.eval(&r(1, 2)).to_f64()).abs() < 1e-12);
        // Mean offspring exactly 1: critical process, so the Kleene iteration
        // approaches 1 slowly — only require closeness, not convergence.
        assert!(extinction_probability(&c) > 0.999);
    }

    #[test]
    fn dirac_one_is_not_extinct_matching_theorem_5_4_condition_b() {
        let c = CountingDistribution::dirac(1);
        let g = GeneratingFunction::new(&c);
        assert!(!g.is_almost_surely_extinct());
        assert!(!c.shifted().is_ast());
    }
}
