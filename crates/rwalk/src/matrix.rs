//! Explicit stochastic-matrix view of the truncated random walk
//! (paper Definition 5.2, Definition 5.3 and Definition 5.5).
//!
//! [`StepDistribution::is_ast`](crate::StepDistribution::is_ast) decides
//! almost-sure absorption analytically (Theorem 5.4). This module provides the
//! *definitional* objects that theorem talks about: the stochastic matrix
//! `M_s` on `ℕ⊥`, its finite powers `M_s^n(m, 0)` (the probability of having
//! been absorbed at `0` within `n` steps when starting from `m`), and the
//! adversarial infimum of Definition 5.5 for a finite family of step
//! distributions. All quantities are exact rationals, so the unit tests can
//! cross-check the analytic criterion against the definition it implements.

use crate::StepDistribution;
use probterm_numerics::Rational;

/// The truncated random walk of Definition 5.2, represented explicitly on the
/// finite state window `{⊥, 0, 1, …, max_state}` (mass that would move past
/// `max_state` is treated as escaped and never absorbed, so every probability
/// computed here is a sound lower bound on the true absorption probability).
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_rwalk::{StepDistribution, WalkMatrix};
///
/// let fair = StepDistribution::from_pairs([
///     (-1, Rational::from_ratio(1, 2)),
///     (1, Rational::from_ratio(1, 2)),
/// ]);
/// let walk = WalkMatrix::new(&fair, 16);
/// // Starting at 1, the walk is absorbed within 1 step with probability 1/2.
/// assert_eq!(walk.absorption_within(1, 1), Rational::from_ratio(1, 2));
/// // ... and within 3 steps with probability 1/2 + 1/8 = 5/8.
/// assert_eq!(walk.absorption_within(1, 3), Rational::from_ratio(5, 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkMatrix {
    step: StepDistribution,
    max_state: usize,
}

impl WalkMatrix {
    /// Builds the truncated walk for `step` on the window `{0, …, max_state}`.
    ///
    /// # Panics
    ///
    /// Panics if `max_state` is zero (the window must contain at least one
    /// transient state).
    pub fn new(step: &StepDistribution, max_state: usize) -> WalkMatrix {
        assert!(max_state > 0, "the state window must contain a transient state");
        WalkMatrix { step: step.clone(), max_state }
    }

    /// The underlying step distribution.
    pub fn step_distribution(&self) -> &StepDistribution {
        &self.step
    }

    /// The largest transient state represented explicitly.
    pub fn max_state(&self) -> usize {
        self.max_state
    }

    /// One row of the stochastic matrix `M_s` of Definition 5.2: the
    /// probability of moving from `state` to each of `⊥, 0, 1, …, max_state`
    /// in one step. The first component of the returned pair is the
    /// probability of leaving the window — entering `⊥` (the failure state)
    /// or escaping past `max_state`; the vector holds the probabilities of
    /// the states `0..=max_state`.
    pub fn row(&self, state: usize) -> (Rational, Vec<Rational>) {
        let mut probs = vec![Rational::zero(); self.max_state + 1];
        if state == 0 {
            // 0 is absorbing.
            probs[0] = Rational::one();
            return (Rational::zero(), probs);
        }
        let mut bottom = self.step.missing_mass();
        for (change, p) in self.step.iter() {
            let target = state as i64 + change;
            if target <= 0 {
                probs[0] += p;
            } else if (target as usize) <= self.max_state {
                probs[target as usize] += p;
            } else {
                bottom += p;
            }
        }
        if bottom.is_negative() {
            bottom = Rational::zero();
        }
        (bottom, probs)
    }

    /// `M_s^n(start, 0)`: the exact probability of having reached the
    /// absorbing state `0` within `n` steps when starting from `start`
    /// (Definition 5.3). Mass folded back at the window edge makes this a
    /// lower bound on the untruncated quantity.
    pub fn absorption_within(&self, start: usize, n: usize) -> Rational {
        let mut dist = vec![Rational::zero(); self.max_state + 1];
        let idx = start.min(self.max_state);
        dist[idx] = Rational::one();
        for _ in 0..n {
            if dist[0].is_one() {
                break;
            }
            dist = self.advance(&dist);
        }
        dist[0].clone()
    }

    /// The full absorption profile `n ↦ M_s^n(start, 0)` for `n = 0, …, steps`.
    /// The sequence is monotone non-decreasing (Definition 5.3 notes that the
    /// limit therefore always exists).
    pub fn absorption_profile(&self, start: usize, steps: usize) -> Vec<Rational> {
        let mut dist = vec![Rational::zero(); self.max_state + 1];
        dist[start.min(self.max_state)] = Rational::one();
        let mut out = Vec::with_capacity(steps + 1);
        out.push(dist[0].clone());
        for _ in 0..steps {
            dist = self.advance(&dist);
            out.push(dist[0].clone());
        }
        out
    }

    /// A lower bound on the expected absorption time `Σ_n (1 − M_s^n(start, 0))`
    /// truncated at `horizon` steps. For walks that are *not* positively
    /// recurrent this quantity grows without bound in `horizon`.
    pub fn expected_absorption_time_lower_bound(&self, start: usize, horizon: usize) -> Rational {
        let profile = self.absorption_profile(start, horizon);
        profile
            .iter()
            .take(horizon)
            .map(|p| Rational::one() - p.clone())
            .sum()
    }

    fn advance(&self, dist: &[Rational]) -> Vec<Rational> {
        let mut next = vec![Rational::zero(); self.max_state + 1];
        next[0] = dist[0].clone();
        for (state, mass) in dist.iter().enumerate().skip(1) {
            if mass.is_zero() {
                continue;
            }
            for (change, p) in self.step.iter() {
                let target = state as i64 + change;
                if target <= 0 {
                    next[0] += mass.mul_ref(p);
                } else if (target as usize) <= self.max_state {
                    next[target as usize] += mass.mul_ref(p);
                }
                // Mass escaping past the window is dropped (never absorbed).
            }
        }
        next
    }
}

/// The adversarial absorption probability of Definition 5.5 for a finite
/// family of step distributions: the infimum over all length-`n` schedules
/// `s_{i₁}, …, s_{iₙ}` of the probability of having been absorbed at `0`
/// within `n` steps, starting from `start`.
///
/// Uniform AST of the family means this quantity tends to `1` as `n → ∞` for
/// every `start`; Lemma 5.6 shows that for finite families it suffices that
/// every member is AST.  The computation is a backwards dynamic program: the
/// adversary picks, at every step and in every state, the member minimising
/// the continuation probability.
///
/// # Panics
///
/// Panics if the family is empty or `max_state` is zero.
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_rwalk::{adversarial_absorption_within, StepDistribution};
///
/// let down = StepDistribution::dirac(-1);
/// let fair = StepDistribution::from_pairs([
///     (-1, Rational::from_ratio(1, 2)),
///     (1, Rational::from_ratio(1, 2)),
/// ]);
/// // Against the adversary, only the fair walk's guarantee survives.
/// let p = adversarial_absorption_within(&[down, fair.clone()], 1, 3, 16);
/// assert_eq!(p, Rational::from_ratio(5, 8));
/// ```
pub fn adversarial_absorption_within(
    family: &[StepDistribution],
    start: usize,
    n: usize,
    max_state: usize,
) -> Rational {
    assert!(!family.is_empty(), "the family of step distributions must be non-empty");
    assert!(max_state > 0, "the state window must contain a transient state");
    // value[m] = inf over schedules of length k of P(absorbed within k | state m).
    let mut value = vec![Rational::zero(); max_state + 1];
    value[0] = Rational::one();
    for _ in 0..n {
        let mut next = vec![Rational::zero(); max_state + 1];
        next[0] = Rational::one();
        for state in 1..=max_state {
            let mut best: Option<Rational> = None;
            for step in family {
                let mut total = Rational::zero();
                for (change, p) in step.iter() {
                    let target = state as i64 + change;
                    let continuation = if target <= 0 {
                        Rational::one()
                    } else if (target as usize) <= max_state {
                        value[target as usize].clone()
                    } else {
                        // Escaping the window is conservatively never absorbed.
                        Rational::zero()
                    };
                    total += p.mul_ref(&continuation);
                }
                best = Some(match best {
                    None => total,
                    Some(b) => b.min(total),
                });
            }
            next[state] = best.expect("family is non-empty");
        }
        value = next;
    }
    value[start.min(max_state)].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finite_family_uniform_ast;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn absorbing_state_stays_absorbed() {
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let walk = WalkMatrix::new(&fair, 8);
        assert_eq!(walk.absorption_within(0, 0), Rational::one());
        assert_eq!(walk.absorption_within(0, 25), Rational::one());
        let (bottom, row) = walk.row(0);
        assert_eq!(bottom, Rational::zero());
        assert_eq!(row[0], Rational::one());
        assert!(row[1..].iter().all(Rational::is_zero));
    }

    #[test]
    fn rows_are_substochastic_and_complete() {
        let leaky = StepDistribution::from_pairs([(-1, r(1, 2)), (2, r(1, 4))]);
        let walk = WalkMatrix::new(&leaky, 6);
        for state in 0..=6 {
            let (bottom, row) = walk.row(state);
            let total: Rational = row.iter().sum::<Rational>() + bottom;
            assert_eq!(total, Rational::one(), "row {state} must be stochastic");
        }
        // From state 1, mass 1/4 escapes to ⊥ every step, so absorption stalls
        // strictly below 1.
        assert!(walk.absorption_within(1, 50) < Rational::one());
    }

    #[test]
    fn dirac_down_absorbs_in_exactly_start_steps() {
        let down = StepDistribution::dirac(-1);
        let walk = WalkMatrix::new(&down, 8);
        for start in 1..=5usize {
            assert_eq!(walk.absorption_within(start, start - 1), Rational::zero());
            assert_eq!(walk.absorption_within(start, start), Rational::one());
        }
    }

    #[test]
    fn fair_walk_profile_matches_catalan_numbers() {
        // Starting from 1, absorption at step 2k+1 happens with probability
        // C_k / 2^{2k+1} (Catalan numbers); cumulative sums: 1/2, 5/8, 21/32, …
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let walk = WalkMatrix::new(&fair, 64);
        let profile = walk.absorption_profile(1, 7);
        assert_eq!(profile[0], Rational::zero());
        assert_eq!(profile[1], r(1, 2));
        assert_eq!(profile[2], r(1, 2));
        assert_eq!(profile[3], r(5, 8));
        assert_eq!(profile[5], r(11, 16));
        assert_eq!(profile[7], r(93, 128));
        // Monotone non-decreasing, as claimed below Definition 5.3.
        for w in profile.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn profile_converges_towards_one_exactly_when_ast() {
        let cases = [
            (StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]), true),
            (StepDistribution::from_pairs([(-1, r(2, 3)), (1, r(1, 3))]), true),
            (StepDistribution::from_pairs([(-1, r(1, 3)), (1, r(2, 3))]), false),
        ];
        for (step, ast) in cases {
            let walk = WalkMatrix::new(&step, 80);
            let p = walk.absorption_within(1, 400);
            if ast {
                assert!(step.is_ast());
                assert!(p > r(9, 10), "AST walk should be mostly absorbed, got {p}");
            } else {
                assert!(!step.is_ast());
                // Gambler's ruin: absorption probability from 1 is q/p = 1/2.
                assert!(p < r(21, 40), "non-AST walk stays near 1/2, got {p}");
            }
        }
    }

    #[test]
    fn expected_absorption_time_distinguishes_past_from_merely_ast() {
        // Fair walk: AST but null recurrent — the truncated expected time keeps
        // growing with the horizon.
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let walk = WalkMatrix::new(&fair, 120);
        let short = walk.expected_absorption_time_lower_bound(1, 50);
        let long = walk.expected_absorption_time_lower_bound(1, 400);
        assert!(long > short.mul_ref(&r(2, 1)), "null-recurrent walk: {short} vs {long}");
        // Downwards-biased walk: positively recurrent; expected time from 1 is
        // 1/(2p−1) = 3 for p = 2/3, so the truncated sums stay below 3.
        let down = StepDistribution::from_pairs([(-1, r(2, 3)), (1, r(1, 3))]);
        let walk = WalkMatrix::new(&down, 120);
        let e = walk.expected_absorption_time_lower_bound(1, 400);
        assert!(e < r(3, 1));
        assert!(e > r(29, 10));
    }

    #[test]
    fn matrix_powers_agree_with_float_simulation() {
        let step = StepDistribution::from_pairs([(-1, r(3, 5)), (0, r(1, 10)), (1, r(3, 10))]);
        let walk = WalkMatrix::new(&step, 60);
        let exact = walk.absorption_within(2, 200).to_f64();
        let float = step.absorption_probability(2, 200);
        assert!((exact - float).abs() < 1e-9, "{exact} vs {float}");
    }

    #[test]
    fn adversarial_absorption_matches_single_member_family() {
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let walk = WalkMatrix::new(&fair, 32);
        for n in [0usize, 1, 3, 10] {
            assert_eq!(
                adversarial_absorption_within(std::slice::from_ref(&fair), 1, n, 32),
                walk.absorption_within(1, n),
            );
        }
    }

    #[test]
    fn adversarial_absorption_is_below_every_member() {
        let a = StepDistribution::from_pairs([(-1, r(2, 3)), (1, r(1, 3))]);
        let b = StepDistribution::from_pairs([(-1, r(1, 2)), (0, r(1, 4)), (1, r(1, 4))]);
        let family = [a.clone(), b.clone()];
        assert!(finite_family_uniform_ast([&a, &b]));
        let adv = adversarial_absorption_within(&family, 1, 30, 64);
        for member in &family {
            let single = WalkMatrix::new(member, 64).absorption_within(1, 30);
            assert!(adv <= single);
        }
        // Lemma 5.6: a finite family of AST members is uniformly AST, so the
        // adversarial probability still climbs towards 1.
        let far = adversarial_absorption_within(&family, 1, 300, 128);
        assert!(far > r(9, 10), "uniform AST family reaches {far}");
    }

    #[test]
    fn adversary_exploits_a_non_ast_member() {
        let good = StepDistribution::dirac(-1);
        let bad = StepDistribution::from_pairs([(1, Rational::one())]);
        let p = adversarial_absorption_within(&[good, bad], 1, 100, 64);
        // The adversary always plays the upwards Dirac step: never absorbed.
        assert_eq!(p, Rational::zero());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn adversarial_absorption_rejects_empty_family() {
        let _ = adversarial_absorption_within(&[], 1, 5, 8);
    }

    #[test]
    #[should_panic(expected = "transient state")]
    fn walk_matrix_rejects_empty_window() {
        let _ = WalkMatrix::new(&StepDistribution::dirac(-1), 0);
    }
}
