//! Random walks on the natural numbers and counting distributions.
//!
//! Paper §5.1 reduces AST of non-affine recursive programs to the almost-sure
//! absorption at `0` of a left-truncated random walk whose per-step relative
//! change is drawn from a *step distribution* `s : ℤ → [0,1]`. The central
//! decision procedure is Theorem 5.4:
//!
//! > A finite step distribution `s` is AST iff (a) `Σᵢ s(i) = 1`, (b) `s ≠ δ₀`,
//! > and (c) `Σᵢ i·s(i) ≤ 0`.
//!
//! which is decidable in linear time for rational-valued distributions.
//! Programs give rise to *counting distributions* (sub-pmfs on ℕ, §5.2) whose
//! shift by `-1` is the associated step distribution, and to the partial order
//! `⊑` of Lemma 5.10 that transfers AST from a lower bound to a whole family
//! (uniform AST).

#![warn(missing_docs)]

mod branching;
mod matrix;

pub use branching::{extinction_probability, GeneratingFunction};
pub use matrix::{adversarial_absorption_within, WalkMatrix};

use probterm_numerics::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A finite step distribution: a sub-probability mass function on ℤ with
/// finite support, describing the relative change of the walk in one step.
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_rwalk::StepDistribution;
///
/// // The shifted counting pattern of the fair non-affine printer (Ex. 1.1(2), p = 1/2):
/// // probability 1/2 of -1 (call resolved) and 1/2 of +1 (one extra pending call).
/// let s = StepDistribution::from_pairs([(-1, Rational::from_ratio(1, 2)), (1, Rational::from_ratio(1, 2))]);
/// assert!(s.is_ast());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepDistribution {
    probabilities: BTreeMap<i64, Rational>,
}

impl StepDistribution {
    /// The everywhere-zero sub-distribution.
    pub fn zero() -> StepDistribution {
        StepDistribution::default()
    }

    /// The Dirac distribution `δ_k`.
    pub fn dirac(k: i64) -> StepDistribution {
        StepDistribution::from_pairs([(k, Rational::one())])
    }

    /// Builds a step distribution from `(change, probability)` pairs,
    /// accumulating repeated keys and dropping zero-probability entries.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the total mass exceeds one.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (i64, Rational)>) -> StepDistribution {
        let mut probabilities: BTreeMap<i64, Rational> = BTreeMap::new();
        for (k, p) in pairs {
            assert!(!p.is_negative(), "negative probability for change {k}");
            if p.is_zero() {
                continue;
            }
            *probabilities.entry(k).or_insert_with(Rational::zero) += p;
        }
        let d = StepDistribution { probabilities };
        assert!(
            d.total_mass() <= Rational::one(),
            "step distribution mass exceeds one: {}",
            d.total_mass()
        );
        d
    }

    /// The probability of the relative change `k`.
    pub fn probability(&self, k: i64) -> Rational {
        self.probabilities.get(&k).cloned().unwrap_or_else(Rational::zero)
    }

    /// Iterates over `(change, probability)` pairs with non-zero probability.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &Rational)> {
        self.probabilities.iter().map(|(k, p)| (*k, p))
    }

    /// The support of the distribution.
    pub fn support(&self) -> Vec<i64> {
        self.probabilities.keys().copied().collect()
    }

    /// Total probability mass `Σᵢ s(i)`.
    pub fn total_mass(&self) -> Rational {
        self.probabilities.values().sum()
    }

    /// The "missing" probability `1 - Σᵢ s(i)`, interpreted as failure of the
    /// walk (transition to `⊥` in Definition 5.2).
    pub fn missing_mass(&self) -> Rational {
        Rational::one() - self.total_mass()
    }

    /// The (signed) expectation `Σᵢ i·s(i)` of the relative change.
    pub fn mean(&self) -> Rational {
        self.probabilities
            .iter()
            .map(|(k, p)| Rational::from_int(*k) * p)
            .sum()
    }

    /// Returns `true` if this is exactly the Dirac distribution at zero.
    pub fn is_dirac_zero(&self) -> bool {
        self.probabilities.len() == 1 && self.probability(0) == Rational::one()
    }

    /// Decides almost-sure absorption at `0` of the truncated walk via
    /// Theorem 5.4: full mass, not `δ₀`, and non-positive drift.
    pub fn is_ast(&self) -> bool {
        self.total_mass() == Rational::one() && !self.is_dirac_zero() && !self.mean().is_positive()
    }

    /// Explains the AST decision, listing which of the three conditions of
    /// Theorem 5.4 fail (empty iff the distribution is AST).
    pub fn ast_violations(&self) -> Vec<AstViolation> {
        let mut out = Vec::new();
        if self.total_mass() != Rational::one() {
            out.push(AstViolation::MassDeficit(self.missing_mass()));
        }
        if self.is_dirac_zero() {
            out.push(AstViolation::DiracZero);
        }
        if self.mean().is_positive() {
            out.push(AstViolation::PositiveDrift(self.mean()));
        }
        out
    }

    /// Numerically simulates the truncated walk of Definition 5.2 and returns
    /// the probability of having reached `0` from `start` within `steps`
    /// steps. Used as a cross-check of the exact decision procedure.
    pub fn absorption_probability(&self, start: u64, steps: usize) -> f64 {
        if start == 0 {
            return 1.0;
        }
        // State space: 0 (absorbed), 1..=max_state, ⊥ (implicit: lost mass).
        let max_state = (start as usize + steps + 1).min(4_000);
        let mut current = vec![0.0f64; max_state + 1];
        if (start as usize) <= max_state {
            current[start as usize] = 1.0;
        }
        let mut absorbed = 0.0f64;
        let support: Vec<(i64, f64)> = self
            .probabilities
            .iter()
            .map(|(k, p)| (*k, p.to_f64()))
            .collect();
        for _ in 0..steps {
            let mut next = vec![0.0f64; max_state + 1];
            for (state, &mass) in current.iter().enumerate().skip(1) {
                if mass == 0.0 {
                    continue;
                }
                for (change, p) in &support {
                    let target = state as i64 + change;
                    if target <= 0 {
                        absorbed += mass * p;
                    } else if (target as usize) <= max_state {
                        next[target as usize] += mass * p;
                    }
                    // Mass escaping beyond max_state is treated as non-absorbed.
                }
            }
            current = next;
        }
        absorbed
    }
}

impl fmt::Display for StepDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.probabilities.is_empty() {
            return write!(f, "0");
        }
        for (i, (k, p)) in self.probabilities.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{p}·δ{k}")?;
        }
        Ok(())
    }
}

/// A reason why a step distribution is not AST (Theorem 5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AstViolation {
    /// The total mass is below one (the walk can fail) by the given amount.
    MassDeficit(Rational),
    /// The distribution is the Dirac distribution at zero.
    DiracZero,
    /// The drift is strictly positive.
    PositiveDrift(Rational),
}

impl fmt::Display for AstViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstViolation::MassDeficit(m) => write!(f, "probability mass deficit of {m}"),
            AstViolation::DiracZero => write!(f, "the step distribution is δ0"),
            AstViolation::PositiveDrift(m) => write!(f, "strictly positive drift {m}"),
        }
    }
}

/// A counting distribution: a sub-pmf on ℕ giving, for a single evaluation of
/// a recursive body, the probability of making recursive calls from exactly
/// `n` distinct call sites (paper §5.2).
///
/// # Examples
///
/// ```
/// use probterm_numerics::Rational;
/// use probterm_rwalk::CountingDistribution;
///
/// // Ex. 1.1 (2) with p = 1/2: no call w.p. 1/2, two calls w.p. 1/2.
/// let c = CountingDistribution::from_pairs([
///     (0, Rational::from_ratio(1, 2)),
///     (2, Rational::from_ratio(1, 2)),
/// ]);
/// assert!(c.shifted().is_ast());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CountingDistribution {
    probabilities: BTreeMap<u64, Rational>,
}

impl CountingDistribution {
    /// The everywhere-zero sub-distribution.
    pub fn zero() -> CountingDistribution {
        CountingDistribution::default()
    }

    /// The Dirac distribution at `n` calls.
    pub fn dirac(n: u64) -> CountingDistribution {
        CountingDistribution::from_pairs([(n, Rational::one())])
    }

    /// Builds a counting distribution from `(calls, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a probability is negative or the total mass exceeds one.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, Rational)>) -> CountingDistribution {
        let mut probabilities: BTreeMap<u64, Rational> = BTreeMap::new();
        for (k, p) in pairs {
            assert!(!p.is_negative(), "negative probability for count {k}");
            if p.is_zero() {
                continue;
            }
            *probabilities.entry(k).or_insert_with(Rational::zero) += p;
        }
        let d = CountingDistribution { probabilities };
        assert!(
            d.total_mass() <= Rational::one(),
            "counting distribution mass exceeds one: {}",
            d.total_mass()
        );
        d
    }

    /// The probability of making recursive calls from exactly `n` call sites.
    pub fn probability(&self, n: u64) -> Rational {
        self.probabilities.get(&n).cloned().unwrap_or_else(Rational::zero)
    }

    /// Iterates over `(calls, probability)` pairs with non-zero probability.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Rational)> {
        self.probabilities.iter().map(|(k, p)| (*k, p))
    }

    /// Total probability mass.
    pub fn total_mass(&self) -> Rational {
        self.probabilities.values().sum()
    }

    /// Cumulative mass `Σ_{m ≤ n} c(m)`.
    pub fn cumulative(&self, n: u64) -> Rational {
        self.probabilities
            .iter()
            .filter(|(k, _)| **k <= n)
            .map(|(_, p)| p)
            .sum()
    }

    /// The largest call count with positive probability (the distribution's
    /// contribution to the *recursive rank* of §5.4), or `None` if empty.
    pub fn max_calls(&self) -> Option<u64> {
        self.probabilities.keys().next_back().copied()
    }

    /// Expected number of recursive calls `Σ n·c(n)`.
    pub fn expected_calls(&self) -> Rational {
        self.probabilities
            .iter()
            .map(|(k, p)| Rational::from_int(*k as i64) * p)
            .sum()
    }

    /// The shifted step distribution `s̄(z) = c(z + 1)` of §5.3: resolving a
    /// call that spawns `n` new calls changes the number of pending calls by
    /// `n − 1`.
    pub fn shifted(&self) -> StepDistribution {
        StepDistribution::from_pairs(
            self.probabilities
                .iter()
                .map(|(k, p)| (*k as i64 - 1, p.clone())),
        )
    }

    /// The partial order `⊑` of §5.3: `self ⊑ other` iff the cumulative weight
    /// of `self` is pointwise at most that of `other`.
    pub fn le(&self, other: &CountingDistribution) -> bool {
        let mut checkpoints: Vec<u64> = self
            .probabilities
            .keys()
            .chain(other.probabilities.keys())
            .copied()
            .collect();
        checkpoints.sort_unstable();
        checkpoints.dedup();
        checkpoints
            .iter()
            .all(|n| self.cumulative(*n) <= other.cumulative(*n))
    }

    /// Lemma 5.10 / Theorem 5.9 combination: if `self ⊑ t` for every `t` in
    /// `family` and the shift of `self` is AST, then the family is uniformly
    /// AST (and hence the program it was extracted from is AST).
    pub fn witnesses_uniform_ast<'a>(
        &self,
        family: impl IntoIterator<Item = &'a CountingDistribution>,
    ) -> bool {
        self.shifted().is_ast() && family.into_iter().all(|t| self.le(t))
    }
}

impl fmt::Display for CountingDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.probabilities.is_empty() {
            return write!(f, "0");
        }
        for (i, (k, p)) in self.probabilities.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{p}·δ{k}")?;
        }
        Ok(())
    }
}

/// Checks uniform AST of a *finite* family of step distributions via
/// Lemma 5.6: a finite family is uniformly AST iff each member is AST.
pub fn finite_family_uniform_ast<'a>(
    family: impl IntoIterator<Item = &'a StepDistribution>,
) -> bool {
    family.into_iter().all(StepDistribution::is_ast)
}

/// Corollary 5.13: a program with recursive rank `rank` that is `ε`-recursion
/// avoiding is AST whenever `rank · (1 − ε) ≤ 1`.
///
/// # Panics
///
/// Panics if `epsilon` is not a probability.
pub fn epsilon_ra_implies_ast(rank: u64, epsilon: &Rational) -> bool {
    assert!(
        epsilon.in_unit_interval(),
        "epsilon must be a probability, got {epsilon}"
    );
    Rational::from_int(rank as i64) * (Rational::one() - epsilon) <= Rational::one()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn theorem_5_4_basic_cases() {
        // Fair ±1 walk: AST (zero drift).
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        assert!(fair.is_ast());
        assert_eq!(fair.mean(), Rational::zero());
        // Downwards biased: AST.
        let down = StepDistribution::from_pairs([(-1, r(2, 3)), (1, r(1, 3))]);
        assert!(down.is_ast());
        // Upwards biased: not AST (positive drift).
        let up = StepDistribution::from_pairs([(-1, r(1, 3)), (1, r(2, 3))]);
        assert!(!up.is_ast());
        assert_eq!(up.ast_violations(), vec![AstViolation::PositiveDrift(r(1, 3))]);
        // Sub-probability mass: not AST.
        let deficit = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 4))]);
        assert!(!deficit.is_ast());
        assert!(matches!(deficit.ast_violations()[0], AstViolation::MassDeficit(_)));
        // δ0: not AST.
        assert!(!StepDistribution::dirac(0).is_ast());
        assert_eq!(StepDistribution::dirac(0).ast_violations(), vec![AstViolation::DiracZero]);
        // δ-1: AST (always moves down).
        assert!(StepDistribution::dirac(-1).is_ast());
    }

    #[test]
    fn printer_counting_patterns_from_the_paper() {
        // Ex. 1.1 (2): counting distribution p·δ0 + (1-p)·δ2. AST iff p ≥ 1/2.
        for (p, expect) in [(r(1, 2), true), (r(3, 5), true), (r(1, 4), false)] {
            let c = CountingDistribution::from_pairs([
                (0, p.clone()),
                (2, Rational::one() - p.clone()),
            ]);
            assert_eq!(c.shifted().is_ast(), expect, "p = {p}");
        }
        // 3print: p·δ0 + (1-p)·δ3. AST iff 3(1-p) - 1 ≤ 0 ⟺ p ≥ 2/3.
        for (p, expect) in [(r(2, 3), true), (r(3, 4), true), (r(1, 2), false)] {
            let c = CountingDistribution::from_pairs([
                (0, p.clone()),
                (3, Rational::one() - p.clone()),
            ]);
            assert_eq!(c.shifted().is_ast(), expect, "p = {p}");
        }
    }

    #[test]
    fn example_5_11_lower_bound_distribution() {
        // s = p·δ0 + (1-p)/2·δ2 + (1-p)/2·δ3 is AST iff p ≥ 3/5 (Ex. 5.11).
        let s = |p: Rational| {
            CountingDistribution::from_pairs([
                (0, p.clone()),
                (2, (Rational::one() - p.clone()) * r(1, 2)),
                (3, (Rational::one() - p) * r(1, 2)),
            ])
        };
        assert!(s(r(3, 5)).shifted().is_ast());
        assert!(s(r(7, 10)).shifted().is_ast());
        assert!(!s(r(59, 100)).shifted().is_ast());
    }

    #[test]
    fn example_5_15_threshold_is_sqrt7_minus_2() {
        // s = p·δ0 + (1-p)²/2·δ2 + (1-p²)/2·δ3 is AST iff p ≥ √7 − 2 (App. D.5).
        let s = |p: Rational| {
            let one = Rational::one();
            CountingDistribution::from_pairs([
                (0, p.clone()),
                (2, (&one - &p).pow(2) * r(1, 2)),
                (3, (&one - &(&p * &p)) * r(1, 2)),
            ])
        };
        // √7 − 2 ≈ 0.645751…
        assert!(s(Rational::parse("0.65").unwrap()).shifted().is_ast());
        assert!(s(Rational::parse("0.6458").unwrap()).shifted().is_ast());
        assert!(!s(Rational::parse("0.645").unwrap()).shifted().is_ast());
        assert!(!s(Rational::parse("0.6").unwrap()).shifted().is_ast());
    }

    #[test]
    fn shifted_distribution_shifts_by_one() {
        let c = CountingDistribution::from_pairs([(0, r(1, 4)), (1, r(1, 4)), (3, r(1, 2))]);
        let s = c.shifted();
        assert_eq!(s.probability(-1), r(1, 4));
        assert_eq!(s.probability(0), r(1, 4));
        assert_eq!(s.probability(2), r(1, 2));
        assert_eq!(s.total_mass(), Rational::one());
        assert_eq!(s.mean(), c.expected_calls() - Rational::one());
    }

    #[test]
    fn partial_order_on_counting_distributions() {
        // s ⊑ t iff cumulative(s) ≤ cumulative(t) pointwise.
        let s = CountingDistribution::from_pairs([(0, r(1, 2)), (2, r(1, 2))]);
        let t = CountingDistribution::from_pairs([(0, r(3, 4)), (2, r(1, 4))]);
        assert!(s.le(&t));
        assert!(!t.le(&s));
        assert!(s.le(&s));
        // Incomparable pair.
        let u = CountingDistribution::from_pairs([(1, Rational::one())]);
        let v = CountingDistribution::from_pairs([(0, r(1, 2)), (3, r(1, 2))]);
        assert!(!u.le(&v) || !v.le(&u));
        // Lemma 5.10 via witnesses_uniform_ast.
        let family = vec![t.clone(), CountingDistribution::from_pairs([(0, Rational::one())])];
        assert!(s.witnesses_uniform_ast(family.iter()));
    }

    #[test]
    fn lemma_5_6_finite_families() {
        let a = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let b = StepDistribution::dirac(-1);
        assert!(finite_family_uniform_ast([&a, &b]));
        let c = StepDistribution::from_pairs([(1, Rational::one())]);
        assert!(!finite_family_uniform_ast([&a, &c]));
        assert!(finite_family_uniform_ast(std::iter::empty::<&StepDistribution>()));
    }

    #[test]
    fn corollary_5_13_epsilon_ra() {
        // Affine programs (rank ≤ 1): any ε works — even ε = 0 satisfies 1·(1-0) ≤ 1.
        assert!(epsilon_ra_implies_ast(1, &Rational::zero()));
        // Ex. 1.1 (2): rank 2, ε = p; applicable iff p ≥ 1/2 (Ex. 5.14).
        assert!(epsilon_ra_implies_ast(2, &r(1, 2)));
        assert!(epsilon_ra_implies_ast(2, &r(3, 4)));
        assert!(!epsilon_ra_implies_ast(2, &r(1, 4)));
        // Ex. 5.1: rank 3, needs ε ≥ 2/3 via the corollary (weaker than Thm. 5.9).
        assert!(epsilon_ra_implies_ast(3, &r(2, 3)));
        assert!(!epsilon_ra_implies_ast(3, &r(3, 5)));
    }

    #[test]
    #[should_panic(expected = "epsilon must be a probability")]
    fn epsilon_ra_rejects_bad_epsilon() {
        let _ = epsilon_ra_implies_ast(2, &r(3, 2));
    }

    #[test]
    fn absorption_simulation_agrees_with_theorem() {
        // AST walk: absorption probability approaches 1.
        let fair = StepDistribution::from_pairs([(-1, r(1, 2)), (1, r(1, 2))]);
        let p = fair.absorption_probability(1, 20_000);
        assert!(p > 0.97, "fair walk absorbed with prob {p}");
        // Biased-up walk from 1: absorption probability tends to q/p = 1/2.
        let up = StepDistribution::from_pairs([(-1, r(1, 3)), (1, r(2, 3))]);
        let p = up.absorption_probability(1, 20_000);
        assert!((p - 0.5).abs() < 0.02, "biased walk absorbed with prob {p}");
        // Dirac at -1 from 3: absorbed after exactly 3 steps.
        let down = StepDistribution::dirac(-1);
        assert_eq!(down.absorption_probability(3, 2), 0.0);
        assert_eq!(down.absorption_probability(3, 3), 1.0);
        assert_eq!(down.absorption_probability(0, 0), 1.0);
    }

    #[test]
    fn accessors_and_display() {
        let c = CountingDistribution::from_pairs([(0, r(3, 5)), (2, r(1, 5)), (3, r(1, 5))]);
        assert_eq!(c.max_calls(), Some(3));
        assert_eq!(c.total_mass(), Rational::one());
        assert_eq!(c.cumulative(2), r(4, 5));
        assert_eq!(c.expected_calls(), r(2, 5) + r(3, 5));
        assert_eq!(c.probability(1), Rational::zero());
        assert!(c.to_string().contains("δ0"));
        assert_eq!(CountingDistribution::zero().max_calls(), None);
        assert_eq!(CountingDistribution::zero().to_string(), "0");
        let s = StepDistribution::from_pairs([(-1, r(1, 2))]);
        assert_eq!(s.support(), vec![-1]);
        assert_eq!(s.missing_mass(), r(1, 2));
        assert!(s.to_string().contains("δ-1"));
        assert_eq!(StepDistribution::zero().to_string(), "0");
        assert_eq!(s.iter().count(), 1);
        assert_eq!(c.iter().count(), 3);
        assert_eq!(CountingDistribution::dirac(2).probability(2), Rational::one());
    }

    #[test]
    #[should_panic(expected = "mass exceeds one")]
    fn overfull_distribution_panics() {
        let _ = StepDistribution::from_pairs([(0, r(3, 4)), (1, r(1, 2))]);
    }
}
