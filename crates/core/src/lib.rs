//! `probterm-core` — the high-level facade of the `probterm` workspace.
//!
//! The workspace reproduces *"On Probabilistic Termination of Functional
//! Programs with Continuous Distributions"* (Beutner & Ong, PLDI 2021). This
//! crate stitches the individual analyses into a single convenient API:
//!
//! * [`analyze_lower_bound`] — lower bounds on the probability of termination
//!   via the interval-trace semantics (paper §3, §7.1; Table 1),
//! * [`analyze_ast`] — automated AST verification of non-affine recursion via
//!   counting, strategies and polytope volumes (paper §5–§6, §7.2; Table 2),
//! * [`TerminationReport`] / [`analyze`] — both analyses plus Monte-Carlo
//!   cross-validation and structural diagnostics in one call,
//! * re-exports of all constituent crates under predictable names.
//!
//! # Quick start
//!
//! ```
//! use probterm_core::{analyze, AnalysisConfig};
//! use probterm_core::spcf::parse_term;
//!
//! let program = parse_term(
//!     "(fix phi x. if sample <= 0.5 then x else phi (phi (x + 1))) 1",
//! ).unwrap();
//! let report = analyze(&program, &AnalysisConfig { lower_bound_depth: 60, ..Default::default() });
//! assert_eq!(report.ast_verified, Some(true));
//! assert!(report.lower_bound.probability.to_f64() > 0.5);
//! ```

#![warn(missing_docs)]

pub use probterm_astver as astver;
pub use probterm_counting as counting;
pub use probterm_intervalsem as intervalsem;
pub use probterm_itypes as itypes;
pub use probterm_numerics as numerics;
pub use probterm_polytope as polytope;
pub use probterm_rwalk as rwalk;
pub use probterm_spcf as spcf;

use probterm_astver::{try_verify_ast_profiled, verify_ast, AstVerification, VerifyError};
use probterm_intervalsem::{lower_bound, try_lower_bound, LowerBoundConfig, LowerBoundResult};
use probterm_numerics::Rational;
use probterm_rwalk::CountingDistribution;
use probterm_spcf::{
    infer_type, try_estimate_termination, MonteCarloConfig, MonteCarloEstimate, SimpleType,
    Strategy, Term, TypeError,
};
use std::fmt;

/// Configuration of the combined analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Exploration depth of the lower-bound engine.
    pub lower_bound_depth: usize,
    /// Number of Monte-Carlo cross-validation runs (0 disables the check).
    pub monte_carlo_runs: usize,
    /// Step budget per Monte-Carlo run.
    pub monte_carlo_steps: usize,
    /// Random seed for the Monte-Carlo cross-check.
    pub seed: u64,
    /// When `true`, the lower-bound exploration and the AST verifier attach
    /// machine profiles, reported in the corresponding result fields
    /// (`lower_bound.profile`, `ast.profile`).
    pub profile: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            lower_bound_depth: 80,
            monte_carlo_runs: 0,
            monte_carlo_steps: 20_000,
            seed: 2021,
            profile: false,
        }
    }
}

/// The combined termination report for one program.
#[derive(Debug, Clone)]
pub struct TerminationReport {
    /// The simple type of the program.
    pub simple_type: SimpleType,
    /// Result of the interval-semantics lower-bound computation.
    pub lower_bound: LowerBoundResult,
    /// Result of the AST verification, when the program shape supports it.
    pub ast: Option<AstVerification>,
    /// `Some(true)` if AST was proven, `Some(false)` if the verifier ran but
    /// could not prove AST, `None` if the verifier was not applicable.
    pub ast_verified: Option<bool>,
    /// The counting distribution `P_approx` reported by the verifier, if any.
    pub papprox: Option<CountingDistribution>,
    /// Why the AST verifier was not applicable, if it was not.
    pub ast_skipped: Option<String>,
    /// Optional Monte-Carlo cross-validation estimate (call-by-name).
    pub monte_carlo: Option<MonteCarloEstimate>,
}

impl fmt::Display for TerminationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "type           : {}", self.simple_type)?;
        writeln!(
            f,
            "Pterm >=       : {} (from {} terminating symbolic paths)",
            self.lower_bound.probability.to_decimal_string(10),
            self.lower_bound.paths
        )?;
        match (&self.ast_verified, &self.papprox) {
            (Some(true), Some(p)) => writeln!(f, "AST            : verified, P_approx = {p}")?,
            (Some(false), Some(p)) => writeln!(f, "AST            : not proved, P_approx = {p}")?,
            _ => writeln!(
                f,
                "AST            : verifier not applicable ({})",
                self.ast_skipped.as_deref().unwrap_or("unknown reason")
            )?,
        }
        if let Some(mc) = &self.monte_carlo {
            writeln!(
                f,
                "Monte-Carlo    : {:.4} ± {:.4}",
                mc.probability(),
                mc.confidence_99()
            )?;
        }
        Ok(())
    }
}

/// Errors of the combined analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The program is open or not simply typed.
    IllTyped(TypeError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::IllTyped(e) => write!(f, "program is not simply typed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Computes a lower bound on the probability of termination (paper §3/§7.1).
pub fn analyze_lower_bound(term: &Term, depth: usize) -> LowerBoundResult {
    lower_bound(term, &LowerBoundConfig::default().with_depth(depth))
}

/// Runs the counting-based AST verifier (paper §5–§6/§7.2).
///
/// # Errors
///
/// Propagates [`VerifyError`] from the verifier (unsupported shape, non-affine
/// guard, too many Environment nodes).
pub fn analyze_ast(term: &Term) -> Result<AstVerification, VerifyError> {
    verify_ast(term)
}

/// Runs both analyses (plus an optional Monte-Carlo cross-check) and returns a
/// combined report. Programs that are not simply typed yield a report with a
/// zero lower bound via [`try_analyze`]; use that variant to observe errors.
pub fn analyze(term: &Term, config: &AnalysisConfig) -> TerminationReport {
    try_analyze(term, config).unwrap_or_else(|_| TerminationReport {
        simple_type: SimpleType::Real,
        lower_bound: analyze_lower_bound(&Term::int(0), 1),
        ast: None,
        ast_verified: None,
        papprox: None,
        ast_skipped: Some("program is not simply typed".into()),
        monte_carlo: None,
    })
}

/// Like [`analyze`] but reports type errors instead of degrading.
///
/// # Errors
///
/// Returns [`AnalysisError::IllTyped`] when the program is open or not simply
/// typed.
pub fn try_analyze(term: &Term, config: &AnalysisConfig) -> Result<TerminationReport, AnalysisError> {
    try_analyze_budgeted(term, config, &mut || Ok(())).map(|analysis| {
        debug_assert!(analysis.complete);
        analysis.report
    })
}

/// A combined analysis that may have been cut short by its budget check.
#[derive(Debug, Clone)]
pub struct BudgetedAnalysis {
    /// The (possibly partial) report. The lower bound is always sound —
    /// interruption only loses bound mass (Thm. 3.4); skipped stages are
    /// explained by `ast_skipped` / a `None` Monte-Carlo estimate.
    pub report: TerminationReport,
    /// `false` when any stage was interrupted or skipped by the check.
    pub complete: bool,
}

/// Like [`try_analyze`], but threads a cooperative interruption check through
/// every stage: inside the symbolic exploration of the lower-bound engine,
/// inside the AST verifier's tree construction and strategy enumeration, and
/// between Monte-Carlo chunks. When the check fails, the remaining stages
/// are skipped and the report degrades gracefully — the lower bound keeps the
/// sound partial mass accumulated so far. This is the engine behind the
/// analysis service's deadline-bounded `analyze` requests.
///
/// # Errors
///
/// Returns [`AnalysisError::IllTyped`] when the program is open or not simply
/// typed.
pub fn try_analyze_budgeted(
    term: &Term,
    config: &AnalysisConfig,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<BudgetedAnalysis, AnalysisError> {
    let simple_type = infer_type(term).map_err(AnalysisError::IllTyped)?;
    let mut complete = true;

    let lower_config = LowerBoundConfig::default()
        .with_depth(config.lower_bound_depth)
        .with_profile(config.profile);
    let mut lower_check = |_work: usize| check();
    let (lower, _interruption) = try_lower_bound(term, &lower_config, &mut lower_check);
    complete &= !lower.interrupted;

    let (ast, ast_verified, papprox, ast_skipped) = if check().is_err() {
        complete = false;
        (None, None, None, Some("interrupted before the AST verifier started".to_string()))
    } else {
        match try_verify_ast_profiled(term, config.profile, check) {
            Ok(v) => {
                let verified = v.verified_ast;
                let papprox = v.papprox.clone();
                (Some(v), Some(verified), Some(papprox), None)
            }
            Err(VerifyError::Interrupted) => {
                complete = false;
                (None, None, None, Some("the AST verifier was interrupted".to_string()))
            }
            Err(e) => (None, None, None, Some(e.to_string())),
        }
    };

    let monte_carlo = if config.monte_carlo_runs == 0 {
        None
    } else if check().is_err() {
        complete = false;
        None
    } else {
        let mc_config = MonteCarloConfig {
            runs: config.monte_carlo_runs,
            max_steps: config.monte_carlo_steps,
            seed: config.seed,
            strategy: Strategy::CallByName,
        };
        match try_estimate_termination(term, &mc_config, |i| {
            if i % 32 == 0 {
                check()
            } else {
                Ok(())
            }
        }) {
            Ok(estimate) => Some(estimate),
            Err(()) => {
                complete = false;
                None
            }
        }
    };

    Ok(BudgetedAnalysis {
        report: TerminationReport {
            simple_type,
            lower_bound: lower,
            ast,
            ast_verified,
            papprox,
            ast_skipped,
            monte_carlo,
        },
        complete,
    })
}

/// Convenience: the certified lower bound as an exact rational.
pub fn certified_lower_bound(term: &Term, depth: usize) -> Rational {
    analyze_lower_bound(term, depth).probability
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    #[test]
    fn combined_report_for_the_running_example() {
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
        let report = analyze(
            &b.term,
            &AnalysisConfig {
                lower_bound_depth: 60,
                monte_carlo_runs: 400,
                monte_carlo_steps: 4_000,
                seed: 1,
                ..Default::default()
            },
        );
        assert_eq!(report.simple_type, SimpleType::Real);
        assert_eq!(report.ast_verified, Some(true));
        let lb = report.lower_bound.probability.to_f64();
        assert!(lb > 0.5 && lb < 1.0);
        let mc = report.monte_carlo.as_ref().unwrap().probability();
        assert!(mc > 0.9);
        let rendered = report.to_string();
        assert!(rendered.contains("AST"));
        assert!(rendered.contains("Pterm"));
    }

    #[test]
    fn non_fixpoint_programs_skip_the_verifier_gracefully() {
        let term = parse_term("if sample <= 1/2 then 0 else 1").unwrap();
        let report = analyze(&term, &AnalysisConfig::default());
        assert_eq!(report.ast_verified, None);
        assert!(report.ast_skipped.is_some());
        assert_eq!(report.lower_bound.probability, Rational::one());
    }

    #[test]
    fn ill_typed_programs_are_reported() {
        let term = parse_term("(lam x. x x) (lam x. x x)").unwrap();
        assert!(matches!(
            try_analyze(&term, &AnalysisConfig::default()),
            Err(AnalysisError::IllTyped(_))
        ));
        // The non-erroring variant degrades instead of panicking.
        let degraded = analyze(&term, &AnalysisConfig::default());
        assert!(degraded.ast_skipped.is_some());
    }

    #[test]
    fn certified_lower_bound_is_sound_for_a_non_ast_term() {
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 4));
        let lb = certified_lower_bound(&b.term, 60);
        assert!(lb.to_f64() <= 1.0 / 3.0 + 1e-12);
        assert!(lb.to_f64() > 0.25);
    }
}
