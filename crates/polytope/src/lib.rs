//! Exact volume computation for convex polytopes.
//!
//! The automated AST verifier of paper §7.2 needs, for every Environment
//! strategy, the probability that an execution path is followed. When the
//! primitive operations appearing in guards are restricted to addition and
//! multiplication by constants, that probability is the Lebesgue volume of a
//! convex polytope `{x ∈ [0,1]^d | Ax ≤ b}` (the paper uses the exact volume
//! implementation of Büeler–Enge–Fukuda as an oracle). This crate provides a
//! from-scratch replacement oracle based on Lasserre's recursive
//! halfspace-elimination formula, carried out entirely in exact rational
//! arithmetic:
//!
//! ```text
//! d · vol_d(P) = Σ_i (b_i / |a_{i,j_i}|) · vol_{d-1}( proj_{j_i}( P ∩ {a_i·x = b_i} ) )
//! ```
//!
//! which follows from the divergence theorem applied to the vector field
//! `F(x) = x` together with the fact that projecting facet `i` along a
//! coordinate `j_i` with `a_{i,j_i} ≠ 0` scales its surface measure by
//! `|a_{i,j_i}| / ‖a_i‖`. All norms cancel, so the recursion stays in ℚ.
//!
//! # Examples
//!
//! ```
//! use probterm_numerics::Rational;
//! use probterm_polytope::Polytope;
//!
//! // The triangle { (x, y) ∈ [0,1]² | x + y ≤ 1 } has area 1/2.
//! let mut p = Polytope::unit_cube(2);
//! p.add_constraint(vec![Rational::one(), Rational::one()], Rational::one());
//! assert_eq!(p.volume(), Rational::from_ratio(1, 2));
//! ```

#![warn(missing_docs)]

use probterm_numerics::Rational;
use std::fmt;

/// A single linear constraint `a · x ≤ b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Coefficient vector `a` (length = ambient dimension).
    pub coefficients: Vec<Rational>,
    /// Right-hand side `b`.
    pub bound: Rational,
}

impl Constraint {
    /// Creates the constraint `coefficients · x ≤ bound`.
    pub fn new(coefficients: Vec<Rational>, bound: Rational) -> Constraint {
        Constraint { coefficients, bound }
    }

    /// Evaluates `a · x` at a point.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimension.
    pub fn dot(&self, point: &[Rational]) -> Rational {
        assert_eq!(point.len(), self.coefficients.len(), "dimension mismatch");
        self.coefficients
            .iter()
            .zip(point)
            .map(|(a, x)| a * x)
            .sum()
    }

    /// Returns `true` if the point satisfies the constraint.
    pub fn is_satisfied_by(&self, point: &[Rational]) -> bool {
        self.dot(point) <= self.bound
    }

    /// Returns `true` if every coefficient is zero.
    pub fn is_trivial(&self) -> bool {
        self.coefficients.iter().all(Rational::is_zero)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coefficients.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}·x{i}")?;
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        write!(f, " <= {}", self.bound)
    }
}

/// A convex polytope in halfspace representation `{x | Ax ≤ b}`.
///
/// The polytope is not required to be bounded in general, but volume
/// computation is only meaningful (and only called by this workspace) for
/// polytopes contained in a box; [`Polytope::unit_cube`] is the usual starting
/// point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polytope {
    dimension: usize,
    constraints: Vec<Constraint>,
}

impl Polytope {
    /// Creates a polytope with no constraints in the given ambient dimension.
    pub fn new(dimension: usize) -> Polytope {
        Polytope { dimension, constraints: Vec::new() }
    }

    /// Creates the unit hypercube `[0, 1]^d` as a polytope.
    pub fn unit_cube(dimension: usize) -> Polytope {
        let mut p = Polytope::new(dimension);
        for i in 0..dimension {
            let mut up = vec![Rational::zero(); dimension];
            up[i] = Rational::one();
            p.add_constraint(up, Rational::one()); // x_i ≤ 1
            let mut down = vec![Rational::zero(); dimension];
            down[i] = -Rational::one();
            p.add_constraint(down, Rational::zero()); // -x_i ≤ 0
        }
        p
    }

    /// Ambient dimension.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The constraints of the polytope.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds the constraint `coefficients · x ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector has the wrong length.
    pub fn add_constraint(&mut self, coefficients: Vec<Rational>, bound: Rational) {
        assert_eq!(
            coefficients.len(),
            self.dimension,
            "constraint dimension mismatch"
        );
        self.constraints.push(Constraint::new(coefficients, bound));
    }

    /// Adds a constraint object.
    ///
    /// # Panics
    ///
    /// Panics if the constraint has the wrong dimension.
    pub fn push(&mut self, constraint: Constraint) {
        assert_eq!(
            constraint.coefficients.len(),
            self.dimension,
            "constraint dimension mismatch"
        );
        self.constraints.push(constraint);
    }

    /// Returns `true` if the point satisfies every constraint.
    pub fn contains(&self, point: &[Rational]) -> bool {
        self.constraints.iter().all(|c| c.is_satisfied_by(point))
    }

    /// Checks feasibility of the system by exact Fourier–Motzkin elimination.
    ///
    /// This is exponential in the dimension in the worst case but the
    /// dimensions arising from symbolic execution paths are tiny (≤ ~10).
    pub fn is_feasible(&self) -> bool {
        // Trivially infeasible constraints (0·x ≤ b with b < 0).
        for c in &self.constraints {
            if c.is_trivial() && c.bound.is_negative() {
                return false;
            }
        }
        if self.dimension == 0 {
            return true;
        }
        fourier_motzkin_feasible(self.dimension, &self.constraints)
    }

    /// Computes the exact `d`-dimensional Lebesgue volume of the polytope via
    /// Lasserre's recursive formula.
    ///
    /// The result is `0` for infeasible or lower-dimensional polytopes. The
    /// polytope must be bounded (callers in this workspace always intersect
    /// with the unit cube); unbounded inputs produce meaningless results.
    pub fn volume(&self) -> Rational {
        volume_rec(self.dimension, &self.constraints)
    }
}

impl fmt::Display for Polytope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "polytope in R^{} with {} constraints:",
            self.dimension,
            self.constraints.len()
        )?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// Fourier–Motzkin elimination based feasibility check.
fn fourier_motzkin_feasible(dimension: usize, constraints: &[Constraint]) -> bool {
    let mut system: Vec<(Vec<Rational>, Rational)> = constraints
        .iter()
        .map(|c| (c.coefficients.clone(), c.bound.clone()))
        .collect();
    for var in (0..dimension).rev() {
        let mut lower: Vec<(Vec<Rational>, Rational)> = Vec::new(); // coefficient < 0
        let mut upper: Vec<(Vec<Rational>, Rational)> = Vec::new(); // coefficient > 0
        let mut rest: Vec<(Vec<Rational>, Rational)> = Vec::new();
        for (coeffs, bound) in system {
            let c = coeffs[var].clone();
            if c.is_zero() {
                rest.push((coeffs, bound));
            } else if c.is_positive() {
                upper.push((coeffs, bound));
            } else {
                lower.push((coeffs, bound));
            }
        }
        // Combine every lower bound with every upper bound.
        for (lc, lb) in &lower {
            for (uc, ub) in &upper {
                let lcoef = lc[var].abs();
                let ucoef = uc[var].clone();
                // lcoef * upper_constraint + ucoef * lower_constraint eliminates var.
                let mut combined = Vec::with_capacity(var);
                for i in 0..var {
                    combined.push(&(&lcoef * &uc[i]) + &(&ucoef * &lc[i]));
                }
                let bound = &(&lcoef * ub) + &(&ucoef * lb);
                rest.push((combined, bound));
            }
        }
        // Truncate remaining constraints to the first `var` variables.
        let mut next = Vec::with_capacity(rest.len());
        for (coeffs, bound) in rest {
            let truncated: Vec<Rational> = coeffs.into_iter().take(var).collect();
            if truncated.iter().all(Rational::is_zero) {
                if bound.is_negative() {
                    return false;
                }
            } else {
                next.push((truncated, bound));
            }
        }
        system = next;
    }
    true
}

/// Brings a constraint system into canonical form for the facet sum:
///
/// * trivial constraints `0 ≤ b` with `b ≥ 0` are dropped, a trivial
///   constraint with `b < 0` makes the system infeasible (`None`),
/// * every constraint is scaled so that its first non-zero coefficient has
///   absolute value one,
/// * exact duplicates are removed.
///
/// Deduplication is essential for correctness: the divergence-theorem sum
/// attributes each facet's surface integral to *one* constraint, so listing
/// the same halfspace twice (which routinely happens after substitution in the
/// recursion) would double-count its facet.
fn canonicalize(constraints: &[Constraint]) -> Option<Vec<Constraint>> {
    let mut out: Vec<Constraint> = Vec::with_capacity(constraints.len());
    for c in constraints {
        match c.coefficients.iter().find(|x| !x.is_zero()) {
            None => {
                if c.bound.is_negative() {
                    return None;
                }
            }
            Some(first) => {
                let scale = first.abs().recip();
                let scaled = Constraint::new(
                    c.coefficients.iter().map(|x| x * &scale).collect(),
                    &c.bound * &scale,
                );
                if !out.contains(&scaled) {
                    out.push(scaled);
                }
            }
        }
    }
    Some(out)
}

/// Recursive Lasserre volume computation.
fn volume_rec(dimension: usize, constraints: &[Constraint]) -> Rational {
    // 0-dimensional polytope: volume 1 if feasible (no violated trivial
    // constraint), 0 otherwise.
    if dimension == 0 {
        let feasible = constraints.iter().all(|c| !c.bound.is_negative());
        return if feasible { Rational::one() } else { Rational::zero() };
    }
    if dimension == 1 {
        return interval_length(constraints);
    }
    let Some(constraints) = canonicalize(constraints) else {
        return Rational::zero();
    };
    let constraints = &constraints[..];
    let mut total = Rational::zero();
    for (i, facet) in constraints.iter().enumerate() {
        // Pick a pivot coordinate with a non-zero coefficient.
        let Some(pivot) = facet.coefficients.iter().position(|c| !c.is_zero()) else {
            continue; // trivial constraint contributes nothing
        };
        let pivot_coefficient = facet.coefficients[pivot].clone();
        // Substitute x_pivot = (b_i - Σ_{k≠pivot} a_k x_k) / a_pivot into the
        // remaining constraints, producing a (d-1)-dimensional system over the
        // other coordinates.
        let mut reduced: Vec<Constraint> = Vec::with_capacity(constraints.len() - 1);
        for (j, other) in constraints.iter().enumerate() {
            if j == i {
                continue;
            }
            let factor = &other.coefficients[pivot] / &pivot_coefficient;
            let mut coeffs = Vec::with_capacity(dimension - 1);
            for k in 0..dimension {
                if k == pivot {
                    continue;
                }
                coeffs.push(&other.coefficients[k] - &(&factor * &facet.coefficients[k]));
            }
            let bound = &other.bound - &(&factor * &facet.bound);
            reduced.push(Constraint::new(coeffs, bound));
        }
        let facet_volume = volume_rec(dimension - 1, &reduced);
        if facet_volume.is_zero() {
            continue;
        }
        if std::env::var("PROBTERM_POLYTOPE_DEBUG").is_ok() {
            eprintln!(
                "dim {dimension} facet {i} ({facet}) pivot {pivot} -> facet_volume {facet_volume}"
            );
        }
        total += &(&facet.bound / &pivot_coefficient.abs()) * &facet_volume;
    }
    let d = Rational::from_int(dimension as i64);
    let v = total / d;
    // Degenerate (lower-dimensional) polytopes produce an exactly-cancelling
    // signed sum; clamp the exact result at zero for robustness.
    if v.is_negative() {
        Rational::zero()
    } else {
        v
    }
}

/// Length of the (possibly empty) interval described by one-dimensional constraints.
fn interval_length(constraints: &[Constraint]) -> Rational {
    let mut lower: Option<Rational> = None; // greatest lower bound
    let mut upper: Option<Rational> = None; // least upper bound
    for c in constraints {
        let a = &c.coefficients[0];
        if a.is_zero() {
            if c.bound.is_negative() {
                return Rational::zero();
            }
            continue;
        }
        let bound = &c.bound / a;
        if a.is_positive() {
            upper = Some(match upper {
                None => bound,
                Some(u) => u.min(bound),
            });
        } else {
            lower = Some(match lower {
                None => bound,
                Some(l) => l.max(bound),
            });
        }
    }
    match (lower, upper) {
        (Some(l), Some(u)) => {
            if u > l {
                u - l
            } else {
                Rational::zero()
            }
        }
        // Unbounded in some direction: meaningless for volume purposes; report 0
        // so that callers notice missing box constraints in tests.
        _ => Rational::zero(),
    }
}

/// A convenience builder for polytopes over the unit cube, as produced by the
/// stochastic symbolic execution of §6: each path constraint is linear in the
/// sample variables `α₀, …, α_{d-1} ∈ [0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct UnitCubePolytope {
    dimension: usize,
    extra: Vec<Constraint>,
}

impl UnitCubePolytope {
    /// Creates a builder over `[0,1]^dimension`.
    pub fn new(dimension: usize) -> UnitCubePolytope {
        UnitCubePolytope { dimension, extra: Vec::new() }
    }

    /// Adds the linear constraint `coefficients · α ≤ bound`.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector has the wrong length.
    pub fn add(&mut self, coefficients: Vec<Rational>, bound: Rational) -> &mut Self {
        assert_eq!(coefficients.len(), self.dimension, "dimension mismatch");
        self.extra.push(Constraint::new(coefficients, bound));
        self
    }

    /// Number of non-box constraints added so far.
    pub fn constraint_count(&self) -> usize {
        self.extra.len()
    }

    /// Builds the full halfspace representation including the box constraints.
    pub fn build(&self) -> Polytope {
        let mut p = Polytope::unit_cube(self.dimension);
        for c in &self.extra {
            p.push(c.clone());
        }
        p
    }

    /// The probability that a uniform sample from the unit cube satisfies all
    /// added constraints — i.e. the volume of the built polytope.
    pub fn probability(&self) -> Rational {
        self.build().volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn unit_cube_volumes() {
        for d in 0..6 {
            assert_eq!(Polytope::unit_cube(d).volume(), Rational::one(), "dimension {d}");
        }
    }

    #[test]
    fn boxes_have_product_volume() {
        // [0, 1/2] × [0, 1/3]
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::zero()], r(1, 2));
        p.add_constraint(vec![Rational::zero(), Rational::one()], r(1, 3));
        assert_eq!(p.volume(), r(1, 6));
    }

    #[test]
    fn simplex_volume_is_one_over_factorial() {
        // {x ∈ [0,1]^d | Σ x_i ≤ 1} has volume 1/d!.
        let mut expected = Rational::one();
        for d in 1..=5usize {
            expected = expected * r(1, d as i64);
            let mut p = Polytope::unit_cube(d);
            p.add_constraint(vec![Rational::one(); d], Rational::one());
            assert_eq!(p.volume(), expected, "dimension {d}");
        }
    }

    #[test]
    fn complement_of_simplex() {
        // {x ∈ [0,1]² | x + y ≥ 1} has volume 1/2.
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![-Rational::one(), -Rational::one()], -Rational::one());
        assert_eq!(p.volume(), r(1, 2));
    }

    #[test]
    fn redundant_constraints_do_not_change_volume() {
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::one()], Rational::from_int(5));
        p.add_constraint(vec![Rational::one(), Rational::zero()], Rational::from_int(2));
        assert_eq!(p.volume(), Rational::one());
    }

    #[test]
    fn empty_polytopes_have_zero_volume() {
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::zero()], r(-1, 2));
        assert_eq!(p.volume(), Rational::zero());
        assert!(!p.is_feasible());
        // Contradictory pair.
        let mut p = Polytope::unit_cube(1);
        p.add_constraint(vec![Rational::one()], r(1, 4));
        p.add_constraint(vec![-Rational::one()], r(-1, 2));
        assert_eq!(p.volume(), Rational::zero());
        assert!(!p.is_feasible());
    }

    #[test]
    fn lower_dimensional_polytopes_have_zero_volume() {
        // The segment {x = 1/2} × [0,1] in the square.
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::zero()], r(1, 2));
        p.add_constraint(vec![-Rational::one(), Rational::zero()], r(-1, 2));
        assert_eq!(p.volume(), Rational::zero());
        assert!(p.is_feasible());
    }

    #[test]
    fn feasibility_via_fourier_motzkin() {
        // x + y ≤ 1, x ≥ 3/4, y ≥ 3/4 is infeasible in the unit square.
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::one()], Rational::one());
        p.add_constraint(vec![-Rational::one(), Rational::zero()], r(-3, 4));
        p.add_constraint(vec![Rational::zero(), -Rational::one()], r(-3, 4));
        assert!(!p.is_feasible());
        assert_eq!(p.volume(), Rational::zero());
        // Relaxing one bound makes it feasible.
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::one()], Rational::one());
        p.add_constraint(vec![-Rational::one(), Rational::zero()], r(-1, 4));
        assert!(p.is_feasible());
        assert!(p.volume() > Rational::zero());
    }

    #[test]
    fn containment_checks() {
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::one()], Rational::one());
        assert!(p.contains(&[r(1, 4), r(1, 4)]));
        assert!(!p.contains(&[r(3, 4), r(3, 4)]));
        assert!(p.contains(&[r(1, 2), r(1, 2)]));
    }

    #[test]
    fn ex515_branch_probability() {
        // The probability that e > p and z ≤ e for uniform e, z and p = 0.65:
        // (1 - p²)/2 = 0.28875 (used by Table 2's Ex. 5.15 row).
        let p = Rational::parse("0.65").unwrap();
        let mut poly = UnitCubePolytope::new(2);
        // e > p  ⟺  -e ≤ -p
        poly.add(vec![-Rational::one(), Rational::zero()], -p.clone());
        // z ≤ e  ⟺  z - e ≤ 0   (coordinates: x0 = e, x1 = z)
        poly.add(vec![-Rational::one(), Rational::one()], Rational::zero());
        let expected = &(&Rational::one() - &(&p * &p)) / &Rational::from_int(2);
        assert_eq!(poly.probability(), expected);
    }

    #[test]
    fn triangle_prism_and_shifted_bodies() {
        // Prism: {x+y ≤ 1} × [0,1] in 3D has volume 1/2.
        let mut p = Polytope::unit_cube(3);
        p.add_constraint(
            vec![Rational::one(), Rational::one(), Rational::zero()],
            Rational::one(),
        );
        assert_eq!(p.volume(), r(1, 2));
        // Shifted simplex x + y ≤ 3/2 in the unit square: area 1 - (1/2)²/2 = 7/8.
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one(), Rational::one()], r(3, 2));
        assert_eq!(p.volume(), r(7, 8));
    }

    #[test]
    fn builder_interface() {
        let mut b = UnitCubePolytope::new(3);
        b.add(
            vec![Rational::one(), Rational::one(), Rational::one()],
            Rational::one(),
        );
        assert_eq!(b.constraint_count(), 1);
        assert_eq!(b.probability(), r(1, 6));
        assert_eq!(b.build().dimension(), 3);
    }

    #[test]
    fn display_renders_constraints() {
        let mut p = Polytope::new(2);
        p.add_constraint(vec![Rational::one(), -Rational::one()], r(1, 2));
        let s = p.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("<= 1/2"));
        let c = Constraint::new(vec![Rational::zero()], Rational::one());
        assert!(c.to_string().contains('0'));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_constraint_panics() {
        let mut p = Polytope::unit_cube(2);
        p.add_constraint(vec![Rational::one()], Rational::one());
    }
}
