//! Symbolic execution trees for the AST proof system (paper §6.1, App. E).
//!
//! The body of a first-order fixpoint `μφ x. M` is executed symbolically under
//! call-by-value with
//!
//! * the actual argument replaced by the unknown value `⊛`,
//! * every `sample` replaced by a fresh sample variable `αᵢ`,
//! * every recursive call `φ V` recorded as a `μ`-node whose outcome is the
//!   unknown value `★`.
//!
//! Conditionals whose guard mentions only sample variables and constants
//! become *probabilistic* branch nodes (annotated with the guard); guards that
//! mention `⊛`/`★` become *Environment* branch nodes, to be resolved
//! adversarially by a strategy (§6.2). The resulting finite binary tree is the
//! object depicted in Fig. 6a.
//!
//! Construction drives the shared environment machine
//! ([`probterm_spcf::absmachine`]) instantiated at [`GuardValue`] literals:
//! `φ` is bound to a marker atom whose application pauses the machine
//! ([`Event::AtomApplied`] → `μ`-node), the recursion argument is bound to
//! the literal `⊛`, and nested fixpoints are abstracted to `⊛` via the
//! machine's opaque-`fix` mode. Branching forks the paused machine — no term
//! is ever substituted or rebuilt, so deep recursion bodies execute in time
//! linear in their step count.

use probterm_numerics::Rational;
use probterm_spcf::absmachine::{DomainSpec, Event, Machine, Stuck, Value};
use probterm_spcf::{Prim, Strategy, Term};
use probterm_telemetry::SharedProfile;
use std::fmt;
use std::rc::Rc;

/// A symbolic value appearing in guards: constants, sample variables, the
/// unknown argument/recursive outcome `⊛`, and postponed primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardValue {
    /// A rational constant.
    Const(Rational),
    /// The sample variable `αᵢ`.
    Var(usize),
    /// The unknown value (`⊛` for the argument, `★` for recursive outcomes).
    Unknown,
    /// A postponed primitive application.
    Prim(Prim, Vec<GuardValue>),
}

impl GuardValue {
    /// Returns `true` if the value mentions the unknown `⊛`/`★`.
    pub fn mentions_unknown(&self) -> bool {
        match self {
            GuardValue::Unknown => true,
            GuardValue::Const(_) | GuardValue::Var(_) => false,
            GuardValue::Prim(_, args) => args.iter().any(GuardValue::mentions_unknown),
        }
    }

    /// Returns the constant if the value is a constant.
    pub fn as_const(&self) -> Option<&Rational> {
        match self {
            GuardValue::Const(r) => Some(r),
            _ => None,
        }
    }

    /// Attempts to view the value as an affine expression `Σ cᵢ·αᵢ + k` over
    /// `dimension` sample variables.
    pub fn as_affine(&self, dimension: usize) -> Option<(Vec<Rational>, Rational)> {
        match self {
            GuardValue::Const(r) => Some((vec![Rational::zero(); dimension], r.clone())),
            GuardValue::Unknown => None,
            GuardValue::Var(i) => {
                if *i >= dimension {
                    return None;
                }
                let mut coeffs = vec![Rational::zero(); dimension];
                coeffs[*i] = Rational::one();
                Some((coeffs, Rational::zero()))
            }
            GuardValue::Prim(p, args) => match p {
                Prim::Add | Prim::Sub => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    let op = |a: &Rational, b: &Rational| {
                        if *p == Prim::Add {
                            a + b
                        } else {
                            a - b
                        }
                    };
                    Some((
                        ca.iter().zip(&cb).map(|(a, b)| op(a, b)).collect(),
                        op(&ka, &kb),
                    ))
                }
                Prim::Neg => {
                    let (c, k) = args[0].as_affine(dimension)?;
                    Some((c.iter().map(|v| -v).collect(), -k))
                }
                Prim::Mul => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    if ca.iter().all(Rational::is_zero) {
                        Some((cb.iter().map(|v| v * &ka).collect(), &ka * &kb))
                    } else if cb.iter().all(Rational::is_zero) {
                        Some((ca.iter().map(|v| v * &kb).collect(), &ka * &kb))
                    } else {
                        None
                    }
                }
                _ => None,
            },
        }
    }
}

impl fmt::Display for GuardValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardValue::Const(r) => write!(f, "{r}"),
            GuardValue::Var(i) => write!(f, "α{i}"),
            GuardValue::Unknown => write!(f, "⊛"),
            GuardValue::Prim(p, args) => {
                write!(f, "{}(", p.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A symbolic execution tree (Fig. 6a).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecTree {
    /// The body evaluated to a value.
    Leaf,
    /// The body got stuck (e.g. a failing `score`); treated as non-terminating.
    Stuck,
    /// A recursive call node `μ`, followed by the rest of the evaluation.
    Mu(Box<ExecTree>),
    /// A probabilistic branch on `guard ≤ 0` over sample variables only.
    Prob {
        /// The guard value (mentions only sample variables and constants).
        guard: GuardValue,
        /// Continuation when `guard ≤ 0`.
        then: Box<ExecTree>,
        /// Continuation when `guard > 0`.
        els: Box<ExecTree>,
    },
    /// An Environment-resolved branch: the guard mentions `⊛`/`★`, so the
    /// branch is treated nondeterministically (coloured red in Fig. 6a).
    Env {
        /// Identifier of the environment node (used to index strategies).
        id: usize,
        /// The (unknown-dependent) guard, kept for display purposes.
        guard: GuardValue,
        /// Continuation when the Environment picks the then-branch.
        then: Box<ExecTree>,
        /// Continuation when the Environment picks the else-branch.
        els: Box<ExecTree>,
    },
    /// A `score` over sample variables: the path continues only where the
    /// scored value is non-negative.
    Score {
        /// The scored value.
        value: GuardValue,
        /// Continuation.
        rest: Box<ExecTree>,
    },
}

impl ExecTree {
    /// Number of Environment nodes in the tree.
    pub fn env_node_count(&self) -> usize {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => rest.env_node_count(),
            ExecTree::Score { rest, .. } => rest.env_node_count(),
            ExecTree::Prob { then, els, .. } => then.env_node_count() + els.env_node_count(),
            ExecTree::Env { then, els, .. } => 1 + then.env_node_count() + els.env_node_count(),
        }
    }

    /// Number of `μ` (recursive call) nodes in the tree.
    pub fn mu_node_count(&self) -> usize {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => 1 + rest.mu_node_count(),
            ExecTree::Score { rest, .. } => rest.mu_node_count(),
            ExecTree::Prob { then, els, .. } | ExecTree::Env { then, els, .. } => {
                then.mu_node_count() + els.mu_node_count()
            }
        }
    }

    /// The maximal number of `μ` nodes along any root-to-leaf path — an upper
    /// bound on the recursive rank observable in the tree.
    pub fn max_mu_per_path(&self) -> u64 {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => 1 + rest.max_mu_per_path(),
            ExecTree::Score { rest, .. } => rest.max_mu_per_path(),
            ExecTree::Prob { then, els, .. } | ExecTree::Env { then, els, .. } => {
                then.max_mu_per_path().max(els.max_mu_per_path())
            }
        }
    }

    /// Renders the tree as indented text (the textual analogue of Fig. 6a).
    pub fn render(&self) -> String {
        fn go(t: &ExecTree, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match t {
                ExecTree::Leaf => out.push_str(&format!("{pad}leaf\n")),
                ExecTree::Stuck => out.push_str(&format!("{pad}stuck\n")),
                ExecTree::Mu(rest) => {
                    out.push_str(&format!("{pad}μ\n"));
                    go(rest, indent, out);
                }
                ExecTree::Score { value, rest } => {
                    out.push_str(&format!("{pad}score({value})\n"));
                    go(rest, indent, out);
                }
                ExecTree::Prob { guard, then, els } => {
                    out.push_str(&format!("{pad}prob [{guard} ≤ 0]\n"));
                    go(then, indent + 1, out);
                    go(els, indent + 1, out);
                }
                ExecTree::Env { id, guard, then, els } => {
                    out.push_str(&format!("{pad}env#{id} [{guard} ≤ 0]\n"));
                    go(then, indent + 1, out);
                    go(els, indent + 1, out);
                }
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

/// Errors raised while building the execution tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The input is not a first-order fixpoint `μφ x. M`.
    NotFirstOrderFixpoint,
    /// The body did not normalise within the step budget (should not happen
    /// for recursion-free bodies; indicates an unsupported shape).
    BodyDidNotNormalise,
    /// An ill-formed application was encountered during symbolic execution.
    IllFormed(String),
    /// The cooperative check of [`try_build_tree`] cancelled the construction
    /// (the analysis service enforcing a deadline).
    Interrupted,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NotFirstOrderFixpoint => {
                write!(f, "expected a first-order fixpoint μφ x. M")
            }
            TreeError::BodyDidNotNormalise => {
                write!(f, "the recursion body did not normalise within the step budget")
            }
            TreeError::IllFormed(what) => write!(f, "ill-formed symbolic execution: {what}"),
            TreeError::Interrupted => {
                write!(f, "symbolic execution tree construction was interrupted")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// The result of building a symbolic execution tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicTree {
    /// The tree itself.
    pub tree: ExecTree,
    /// Total number of sample variables introduced (the tree dimension).
    pub sample_count: usize,
    /// Number of Environment nodes (indexed `0 .. env_count`).
    pub env_count: usize,
}

/// The atom bound to `φ`: applying it is the recursive-call event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RecMarker;

fn guard_const(r: &Rational) -> GuardValue {
    GuardValue::Const(r.clone())
}

fn tree_spec() -> DomainSpec<GuardValue, RecMarker> {
    DomainSpec {
        strategy: Strategy::CallByValue,
        lit_of_num: guard_const,
        atom_of_free: None,
        // Nested fixpoints are abstracted as the unknown value `⊛`.
        opaque_fix: true,
        value_first: true,
    }
}

/// Shared mutable counters during tree construction.
struct Builder {
    samples: usize,
    env_nodes: usize,
    /// Remaining *global* step budget, shared by all branches of the tree.
    fuel: usize,
}

const TREE_FUEL: usize = 1_000_000;

/// Builds the symbolic execution tree of a first-order fixpoint term
/// (`μφ x. M`, possibly applied to an argument which is ignored — the analysis
/// replaces the argument by `⊛`).
///
/// # Errors
///
/// Returns a [`TreeError`] if the shape is unsupported or the body does not
/// normalise within an internal step budget.
pub fn build_tree(term: &Term) -> Result<SymbolicTree, TreeError> {
    try_build_tree(term, &mut || Ok(()))
}

/// Like [`build_tree`], but calls `check` periodically during construction
/// and aborts with [`TreeError::Interrupted`] when it fails — the hook
/// through which the analysis service enforces per-request deadlines inside
/// the verifier.
///
/// # Errors
///
/// As [`build_tree`], plus [`TreeError::Interrupted`].
pub fn try_build_tree(
    term: &Term,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<SymbolicTree, TreeError> {
    try_build_tree_profiled(term, None, check)
}

/// Like [`try_build_tree`], tallying machine steps, events, branch forks and
/// the maximum tree recursion depth into `profile` when one is given.
///
/// # Errors
///
/// As [`build_tree`], plus [`TreeError::Interrupted`].
pub fn try_build_tree_profiled(
    term: &Term,
    profile: Option<&SharedProfile>,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<SymbolicTree, TreeError> {
    let fixpoint = match term {
        Term::App(f, _) if matches!(**f, Term::Fix(_, _, _)) => &**f,
        other => other,
    };
    let Term::Fix(phi, x, body) = fixpoint else {
        return Err(TreeError::NotFirstOrderFixpoint);
    };
    if !probterm_spcf::is_first_order_fixpoint(fixpoint) {
        return Err(TreeError::NotFirstOrderFixpoint);
    }
    let mut builder = Builder { samples: 0, env_nodes: 0, fuel: TREE_FUEL };
    // The argument is the unknown `⊛`; `φ` is the recursion marker. `φ` has
    // precedence on (pathological) name clashes, like the old embedding.
    let bindings = vec![
        (x.clone(), Value::Lit(GuardValue::Unknown)),
        (phi.clone(), Value::Atom(RecMarker)),
    ];
    let mut machine = Machine::with_bindings(tree_spec(), body, builder.fuel, bindings);
    if let Some(cell) = profile {
        machine.set_profile(Rc::clone(cell));
    }
    let tree = drive_tree(&mut machine, &mut builder, 1, check)?;
    Ok(SymbolicTree {
        tree,
        sample_count: builder.samples,
        env_count: builder.env_nodes,
    })
}

/// What a linear segment of the evaluation wraps around its subtree.
enum Wrap {
    Mu,
    Score(GuardValue),
}

/// Drives one machine until its path of the tree is complete, recursing at
/// branch forks. `μ` and `score` nodes accumulate as wrappers around the
/// eventual tip, exactly mirroring the old recursive substitution builder.
fn drive_tree(
    machine: &mut Machine<'_, GuardValue, RecMarker>,
    builder: &mut Builder,
    depth: usize,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<ExecTree, TreeError> {
    if let Some(profile) = machine.profile() {
        profile.observe_frontier(depth);
    }
    let mut wraps: Vec<Wrap> = Vec::new();
    let mut charged = machine.steps();
    let tip = loop {
        // Trees are small (the global fuel is a safety valve, not a working
        // budget), so checking every event is cheap and keeps deadline
        // latency tight.
        check().map_err(|()| TreeError::Interrupted)?;
        // Charge this machine's progress against the global budget so that
        // runaway recursion in *any* branch exhausts construction as a whole.
        let now = machine.steps();
        let delta = now - charged;
        charged = now;
        if delta > builder.fuel {
            return Err(TreeError::BodyDidNotNormalise);
        }
        builder.fuel -= delta;
        machine.set_max_steps(now.saturating_add(builder.fuel));
        match machine.next_event() {
            Event::Done(_) => break ExecTree::Leaf,
            Event::OutOfFuel => return Err(TreeError::BodyDidNotNormalise),
            Event::Stuck(Stuck::FreeVariable(x)) => {
                return Err(TreeError::IllFormed(format!("free variable {x}")));
            }
            Event::Stuck(Stuck::NotAFunction(_)) => {
                return Err(TreeError::IllFormed(
                    "application of a non-function value".into(),
                ));
            }
            Event::Stuck(Stuck::NotANumeral(_)) => {
                return Err(TreeError::IllFormed(
                    "a function value reached a first-order position".into(),
                ));
            }
            Event::Sample => {
                let v = GuardValue::Var(builder.samples);
                builder.samples += 1;
                machine.resume_lit(v);
            }
            Event::PrimReady(p, args) => {
                // Constant-fold where possible.
                if args.iter().all(|v| v.as_const().is_some()) {
                    let concrete: Vec<Rational> =
                        args.iter().map(|v| v.as_const().unwrap().clone()).collect();
                    match p.eval(&concrete) {
                        Some(r) => machine.resume_lit(GuardValue::Const(r)),
                        None => break ExecTree::Stuck,
                    }
                } else {
                    machine.resume_lit(GuardValue::Prim(p, args));
                }
            }
            Event::BranchReady(guard) => {
                if let Some(r) = guard.as_const() {
                    let take_then = !r.is_positive();
                    machine.resume_branch(take_then);
                } else {
                    // Fork: this machine continues into the then-branch, the
                    // clone into the else-branch; Environment ids are
                    // assigned post-order, like the old builder.
                    let mut else_machine = machine.clone();
                    if let Some(profile) = machine.profile() {
                        profile.count_fork();
                    }
                    machine.resume_branch(true);
                    else_machine.resume_branch(false);
                    let then_tree = drive_tree(machine, builder, depth + 1, check)?;
                    let else_tree = drive_tree(&mut else_machine, builder, depth + 1, check)?;
                    if guard.mentions_unknown() {
                        let id = builder.env_nodes;
                        builder.env_nodes += 1;
                        break ExecTree::Env {
                            id,
                            guard,
                            then: Box::new(then_tree),
                            els: Box::new(else_tree),
                        };
                    }
                    break ExecTree::Prob {
                        guard,
                        then: Box::new(then_tree),
                        els: Box::new(else_tree),
                    };
                }
            }
            Event::ScoreReady(v) => {
                if let Some(r) = v.as_const() {
                    if r.is_negative() {
                        break ExecTree::Stuck;
                    }
                    machine.resume_lit(v);
                } else if v.mentions_unknown() {
                    // A score whose success depends on an unknown value: be
                    // conservative and treat the path as possibly failing.
                    break ExecTree::Stuck;
                } else {
                    wraps.push(Wrap::Score(v.clone()));
                    machine.resume_lit(v);
                }
            }
            // A recursive call `φ V`: a μ node whose outcome is unknown.
            Event::AtomApplied(RecMarker) => {
                wraps.push(Wrap::Mu);
                machine.resume_lit(GuardValue::Unknown);
            }
            Event::FixEncountered(_) => machine.resume_lit(GuardValue::Unknown),
        }
    };
    Ok(wraps.into_iter().rev().fold(tip, |tree, wrap| match wrap {
        Wrap::Mu => ExecTree::Mu(Box::new(tree)),
        Wrap::Score(value) => ExecTree::Score { value, rest: Box::new(tree) },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    #[test]
    fn affine_printer_tree_has_one_prob_node_and_one_mu() {
        let b = catalog::printer_affine(Rational::from_ratio(1, 2));
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 0);
        assert_eq!(tree.sample_count, 1);
        assert_eq!(tree.tree.mu_node_count(), 1);
        assert_eq!(tree.tree.max_mu_per_path(), 1);
        let rendered = tree.tree.render();
        assert!(rendered.contains("prob"));
        assert!(rendered.contains("μ"));
    }

    #[test]
    fn nonaffine_printer_tree_has_two_mu_nodes_on_the_failure_path() {
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 0);
        assert_eq!(tree.tree.max_mu_per_path(), 2);
        assert_eq!(tree.tree.mu_node_count(), 2);
    }

    #[test]
    fn tired_printer_tree_matches_figure_6a() {
        // Ex. 5.1: one Environment node (the sig(x) branching), probabilistic
        // branches for the p-test and the fair choice, paths with 0, 2 and 3 μ nodes.
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 1);
        assert_eq!(tree.tree.max_mu_per_path(), 3);
        let rendered = tree.tree.render();
        assert!(rendered.contains("env#0"));
        assert!(rendered.contains("⊛"), "environment guard should mention ⊛: {rendered}");
    }

    #[test]
    fn error_reuse_printer_has_env_and_reused_sample() {
        let b = catalog::error_reuse_printer(Rational::parse("0.65").unwrap());
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 1);
        assert_eq!(tree.tree.max_mu_per_path(), 3);
        // Samples: e, the sig-test sample, the e-test sample.
        assert_eq!(tree.sample_count, 3);
    }

    #[test]
    fn guards_on_the_argument_become_environment_nodes() {
        // The 1dRW guard x ≤ 0 depends on ⊛ and must be Environment-resolved.
        let b = catalog::random_walk_1d(Rational::from_ratio(1, 2), 1);
        let tree = build_tree(&b.term).unwrap();
        assert!(tree.env_count >= 1);
        assert!(tree.tree.max_mu_per_path() >= 1);
    }

    #[test]
    fn rejects_non_fixpoint_terms() {
        assert_eq!(
            build_tree(&parse_term("1 + 2").unwrap()),
            Err(TreeError::NotFirstOrderFixpoint)
        );
        let higher = parse_term("fix phi x. lam d. phi x d").unwrap();
        assert_eq!(build_tree(&higher), Err(TreeError::NotFirstOrderFixpoint));
    }

    #[test]
    fn stuck_scores_produce_stuck_leaves() {
        let t = parse_term("(fix phi x. if sample <= 1/2 then score(0-1) else phi x) 0").unwrap();
        let tree = build_tree(&t).unwrap();
        let rendered = tree.tree.render();
        assert!(rendered.contains("stuck"));
    }

    #[test]
    fn interruption_cancels_construction() {
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let mut budget = 1usize;
        let result = try_build_tree(&b.term, &mut || {
            if budget == 0 {
                Err(())
            } else {
                budget -= 1;
                Ok(())
            }
        });
        assert_eq!(result, Err(TreeError::Interrupted));
        // An infallible check reproduces build_tree exactly.
        assert_eq!(
            try_build_tree(&b.term, &mut || Ok(())),
            build_tree(&b.term)
        );
    }

    #[test]
    fn guard_value_affine_views() {
        let g = GuardValue::Prim(
            Prim::Sub,
            vec![GuardValue::Var(0), GuardValue::Const(Rational::from_ratio(3, 5))],
        );
        let (coeffs, k) = g.as_affine(1).unwrap();
        assert_eq!(coeffs, vec![Rational::one()]);
        assert_eq!(k, Rational::from_ratio(-3, 5));
        assert!(!g.mentions_unknown());
        let h = GuardValue::Prim(Prim::Sub, vec![GuardValue::Var(0), GuardValue::Unknown]);
        assert!(h.mentions_unknown());
        assert!(h.as_affine(1).is_none());
        assert!(format!("{h}").contains("⊛"));
    }
}
