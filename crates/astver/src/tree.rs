//! Symbolic execution trees for the AST proof system (paper §6.1, App. E).
//!
//! The body of a first-order fixpoint `μφ x. M` is executed symbolically under
//! call-by-value with
//!
//! * the actual argument replaced by the unknown value `⊛`,
//! * every `sample` replaced by a fresh sample variable `αᵢ`,
//! * every recursive call `φ V` recorded as a `μ`-node whose outcome is the
//!   unknown value `★`.
//!
//! Conditionals whose guard mentions only sample variables and constants
//! become *probabilistic* branch nodes (annotated with the guard); guards that
//! mention `⊛`/`★` become *Environment* branch nodes, to be resolved
//! adversarially by a strategy (§6.2). The resulting finite binary tree is the
//! object depicted in Fig. 6a.

use probterm_numerics::Rational;
use probterm_spcf::{Ident, Prim, Term};
use std::fmt;

/// A symbolic value appearing in guards: constants, sample variables, the
/// unknown argument/recursive outcome `⊛`, and postponed primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardValue {
    /// A rational constant.
    Const(Rational),
    /// The sample variable `αᵢ`.
    Var(usize),
    /// The unknown value (`⊛` for the argument, `★` for recursive outcomes).
    Unknown,
    /// A postponed primitive application.
    Prim(Prim, Vec<GuardValue>),
}

impl GuardValue {
    /// Returns `true` if the value mentions the unknown `⊛`/`★`.
    pub fn mentions_unknown(&self) -> bool {
        match self {
            GuardValue::Unknown => true,
            GuardValue::Const(_) | GuardValue::Var(_) => false,
            GuardValue::Prim(_, args) => args.iter().any(GuardValue::mentions_unknown),
        }
    }

    /// Returns the constant if the value is a constant.
    pub fn as_const(&self) -> Option<&Rational> {
        match self {
            GuardValue::Const(r) => Some(r),
            _ => None,
        }
    }

    /// Attempts to view the value as an affine expression `Σ cᵢ·αᵢ + k` over
    /// `dimension` sample variables.
    pub fn as_affine(&self, dimension: usize) -> Option<(Vec<Rational>, Rational)> {
        match self {
            GuardValue::Const(r) => Some((vec![Rational::zero(); dimension], r.clone())),
            GuardValue::Unknown => None,
            GuardValue::Var(i) => {
                if *i >= dimension {
                    return None;
                }
                let mut coeffs = vec![Rational::zero(); dimension];
                coeffs[*i] = Rational::one();
                Some((coeffs, Rational::zero()))
            }
            GuardValue::Prim(p, args) => match p {
                Prim::Add | Prim::Sub => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    let op = |a: &Rational, b: &Rational| {
                        if *p == Prim::Add {
                            a + b
                        } else {
                            a - b
                        }
                    };
                    Some((
                        ca.iter().zip(&cb).map(|(a, b)| op(a, b)).collect(),
                        op(&ka, &kb),
                    ))
                }
                Prim::Neg => {
                    let (c, k) = args[0].as_affine(dimension)?;
                    Some((c.iter().map(|v| -v).collect(), -k))
                }
                Prim::Mul => {
                    let (ca, ka) = args[0].as_affine(dimension)?;
                    let (cb, kb) = args[1].as_affine(dimension)?;
                    if ca.iter().all(Rational::is_zero) {
                        Some((cb.iter().map(|v| v * &ka).collect(), &ka * &kb))
                    } else if cb.iter().all(Rational::is_zero) {
                        Some((ca.iter().map(|v| v * &kb).collect(), &ka * &kb))
                    } else {
                        None
                    }
                }
                _ => None,
            },
        }
    }
}

impl fmt::Display for GuardValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardValue::Const(r) => write!(f, "{r}"),
            GuardValue::Var(i) => write!(f, "α{i}"),
            GuardValue::Unknown => write!(f, "⊛"),
            GuardValue::Prim(p, args) => {
                write!(f, "{}(", p.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A symbolic execution tree (Fig. 6a).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecTree {
    /// The body evaluated to a value.
    Leaf,
    /// The body got stuck (e.g. a failing `score`); treated as non-terminating.
    Stuck,
    /// A recursive call node `μ`, followed by the rest of the evaluation.
    Mu(Box<ExecTree>),
    /// A probabilistic branch on `guard ≤ 0` over sample variables only.
    Prob {
        /// The guard value (mentions only sample variables and constants).
        guard: GuardValue,
        /// Continuation when `guard ≤ 0`.
        then: Box<ExecTree>,
        /// Continuation when `guard > 0`.
        els: Box<ExecTree>,
    },
    /// An Environment-resolved branch: the guard mentions `⊛`/`★`, so the
    /// branch is treated nondeterministically (coloured red in Fig. 6a).
    Env {
        /// Identifier of the environment node (used to index strategies).
        id: usize,
        /// The (unknown-dependent) guard, kept for display purposes.
        guard: GuardValue,
        /// Continuation when the Environment picks the then-branch.
        then: Box<ExecTree>,
        /// Continuation when the Environment picks the else-branch.
        els: Box<ExecTree>,
    },
    /// A `score` over sample variables: the path continues only where the
    /// scored value is non-negative.
    Score {
        /// The scored value.
        value: GuardValue,
        /// Continuation.
        rest: Box<ExecTree>,
    },
}

impl ExecTree {
    /// Number of Environment nodes in the tree.
    pub fn env_node_count(&self) -> usize {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => rest.env_node_count(),
            ExecTree::Score { rest, .. } => rest.env_node_count(),
            ExecTree::Prob { then, els, .. } => then.env_node_count() + els.env_node_count(),
            ExecTree::Env { then, els, .. } => 1 + then.env_node_count() + els.env_node_count(),
        }
    }

    /// Number of `μ` (recursive call) nodes in the tree.
    pub fn mu_node_count(&self) -> usize {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => 1 + rest.mu_node_count(),
            ExecTree::Score { rest, .. } => rest.mu_node_count(),
            ExecTree::Prob { then, els, .. } | ExecTree::Env { then, els, .. } => {
                then.mu_node_count() + els.mu_node_count()
            }
        }
    }

    /// The maximal number of `μ` nodes along any root-to-leaf path — an upper
    /// bound on the recursive rank observable in the tree.
    pub fn max_mu_per_path(&self) -> u64 {
        match self {
            ExecTree::Leaf | ExecTree::Stuck => 0,
            ExecTree::Mu(rest) => 1 + rest.max_mu_per_path(),
            ExecTree::Score { rest, .. } => rest.max_mu_per_path(),
            ExecTree::Prob { then, els, .. } | ExecTree::Env { then, els, .. } => {
                then.max_mu_per_path().max(els.max_mu_per_path())
            }
        }
    }

    /// Renders the tree as indented text (the textual analogue of Fig. 6a).
    pub fn render(&self) -> String {
        fn go(t: &ExecTree, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match t {
                ExecTree::Leaf => out.push_str(&format!("{pad}leaf\n")),
                ExecTree::Stuck => out.push_str(&format!("{pad}stuck\n")),
                ExecTree::Mu(rest) => {
                    out.push_str(&format!("{pad}μ\n"));
                    go(rest, indent, out);
                }
                ExecTree::Score { value, rest } => {
                    out.push_str(&format!("{pad}score({value})\n"));
                    go(rest, indent, out);
                }
                ExecTree::Prob { guard, then, els } => {
                    out.push_str(&format!("{pad}prob [{guard} ≤ 0]\n"));
                    go(then, indent + 1, out);
                    go(els, indent + 1, out);
                }
                ExecTree::Env { id, guard, then, els } => {
                    out.push_str(&format!("{pad}env#{id} [{guard} ≤ 0]\n"));
                    go(then, indent + 1, out);
                    go(els, indent + 1, out);
                }
            }
        }
        let mut out = String::new();
        go(self, 0, &mut out);
        out
    }
}

/// Errors raised while building the execution tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The input is not a first-order fixpoint `μφ x. M`.
    NotFirstOrderFixpoint,
    /// The body did not normalise within the step budget (should not happen
    /// for recursion-free bodies; indicates an unsupported shape).
    BodyDidNotNormalise,
    /// An ill-formed application was encountered during symbolic execution.
    IllFormed(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NotFirstOrderFixpoint => {
                write!(f, "expected a first-order fixpoint μφ x. M")
            }
            TreeError::BodyDidNotNormalise => {
                write!(f, "the recursion body did not normalise within the step budget")
            }
            TreeError::IllFormed(what) => write!(f, "ill-formed symbolic execution: {what}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// The result of building a symbolic execution tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicTree {
    /// The tree itself.
    pub tree: ExecTree,
    /// Total number of sample variables introduced (the tree dimension).
    pub sample_count: usize,
    /// Number of Environment nodes (indexed `0 .. env_count`).
    pub env_count: usize,
}

// Internal symbolic CbV terms.
#[derive(Debug, Clone, PartialEq)]
enum ATerm {
    Val(GuardValue),
    RecMarker,
    Var(Ident),
    Lam(Ident, Box<ATerm>),
    App(Box<ATerm>, Box<ATerm>),
    If(Box<ATerm>, Box<ATerm>, Box<ATerm>),
    Prim(Prim, Vec<ATerm>),
    Sample,
    Score(Box<ATerm>),
}

impl ATerm {
    fn embed(t: &Term, phi: &Ident, x: &Ident) -> ATerm {
        match t {
            Term::Var(y) if y == phi => ATerm::RecMarker,
            Term::Var(y) if y == x => ATerm::Val(GuardValue::Unknown),
            Term::Var(y) => ATerm::Var(y.clone()),
            Term::Num(r) => ATerm::Val(GuardValue::Const(r.clone())),
            Term::Lam(y, b) => {
                let inner_phi = if y == phi { probterm_spcf::ident("#shadow-phi") } else { phi.clone() };
                let inner_x = if y == x { probterm_spcf::ident("#shadow-x") } else { x.clone() };
                ATerm::Lam(y.clone(), Box::new(ATerm::embed(b, &inner_phi, &inner_x)))
            }
            Term::Fix(_, _, _) => ATerm::Val(GuardValue::Unknown),
            Term::App(f, a) => ATerm::App(
                Box::new(ATerm::embed(f, phi, x)),
                Box::new(ATerm::embed(a, phi, x)),
            ),
            Term::If(g, t1, t2) => ATerm::If(
                Box::new(ATerm::embed(g, phi, x)),
                Box::new(ATerm::embed(t1, phi, x)),
                Box::new(ATerm::embed(t2, phi, x)),
            ),
            Term::Prim(p, args) => {
                ATerm::Prim(*p, args.iter().map(|a| ATerm::embed(a, phi, x)).collect())
            }
            Term::Sample => ATerm::Sample,
            Term::Score(m) => ATerm::Score(Box::new(ATerm::embed(m, phi, x))),
        }
    }

    fn is_value(&self) -> bool {
        matches!(
            self,
            ATerm::Val(_) | ATerm::RecMarker | ATerm::Var(_) | ATerm::Lam(_, _)
        )
    }

    fn subst(&self, x: &Ident, replacement: &ATerm) -> ATerm {
        match self {
            ATerm::Var(y) => {
                if y == x {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            ATerm::Val(_) | ATerm::RecMarker | ATerm::Sample => self.clone(),
            ATerm::Lam(y, b) => {
                if y == x {
                    self.clone()
                } else {
                    ATerm::Lam(y.clone(), Box::new(b.subst(x, replacement)))
                }
            }
            ATerm::App(f, a) => ATerm::App(
                Box::new(f.subst(x, replacement)),
                Box::new(a.subst(x, replacement)),
            ),
            ATerm::If(g, t, e) => ATerm::If(
                Box::new(g.subst(x, replacement)),
                Box::new(t.subst(x, replacement)),
                Box::new(e.subst(x, replacement)),
            ),
            ATerm::Prim(p, args) => {
                ATerm::Prim(*p, args.iter().map(|a| a.subst(x, replacement)).collect())
            }
            ATerm::Score(m) => ATerm::Score(Box::new(m.subst(x, replacement))),
        }
    }
}

/// Shared mutable counters during tree construction.
struct Builder {
    samples: usize,
    env_nodes: usize,
    fuel: usize,
}

/// Builds the symbolic execution tree of a first-order fixpoint term
/// (`μφ x. M`, possibly applied to an argument which is ignored — the analysis
/// replaces the argument by `⊛`).
///
/// # Errors
///
/// Returns a [`TreeError`] if the shape is unsupported or the body does not
/// normalise within an internal step budget.
pub fn build_tree(term: &Term) -> Result<SymbolicTree, TreeError> {
    let fixpoint = match term {
        Term::App(f, _) if matches!(**f, Term::Fix(_, _, _)) => &**f,
        other => other,
    };
    let Term::Fix(phi, x, body) = fixpoint else {
        return Err(TreeError::NotFirstOrderFixpoint);
    };
    if !probterm_spcf::is_first_order_fixpoint(fixpoint) {
        return Err(TreeError::NotFirstOrderFixpoint);
    }
    let initial = ATerm::embed(body, phi, x);
    let mut builder = Builder {
        samples: 0,
        env_nodes: 0,
        fuel: 1_000_000,
    };
    let tree = evaluate(initial, &mut builder)?;
    Ok(SymbolicTree {
        tree,
        sample_count: builder.samples,
        env_count: builder.env_nodes,
    })
}

/// Evaluates an `ATerm` to an execution tree.
fn evaluate(term: ATerm, builder: &mut Builder) -> Result<ExecTree, TreeError> {
    let mut current = term;
    loop {
        if builder.fuel == 0 {
            return Err(TreeError::BodyDidNotNormalise);
        }
        builder.fuel -= 1;
        if current.is_value() {
            return Ok(ExecTree::Leaf);
        }
        match step_or_branch(current, builder)? {
            Stepped::Continue(next) => current = next,
            Stepped::Tree(tree) => return Ok(tree),
        }
    }
}

enum Stepped {
    Continue(ATerm),
    Tree(ExecTree),
}

/// One CbV symbolic step; branching constructs build tree nodes by recursively
/// evaluating the continuations.
fn step_or_branch(term: ATerm, builder: &mut Builder) -> Result<Stepped, TreeError> {
    enum Frame {
        AppFun(ATerm),
        AppArg(ATerm),
        If(ATerm, ATerm),
        Score,
        Prim(Prim, Vec<ATerm>, Vec<ATerm>),
    }
    fn plug(frames: &[Frame], mut t: ATerm) -> ATerm {
        for frame in frames.iter().rev() {
            t = match frame {
                Frame::AppFun(arg) => ATerm::App(Box::new(t), Box::new(arg.clone())),
                Frame::AppArg(fun) => ATerm::App(Box::new(fun.clone()), Box::new(t)),
                Frame::If(a, b) => ATerm::If(Box::new(t), Box::new(a.clone()), Box::new(b.clone())),
                Frame::Score => ATerm::Score(Box::new(t)),
                Frame::Prim(p, prefix, suffix) => {
                    let mut args = prefix.clone();
                    args.push(t);
                    args.extend(suffix.iter().cloned());
                    ATerm::Prim(*p, args)
                }
            };
        }
        t
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut current = term;
    loop {
        match current {
            ATerm::App(fun, arg) => {
                if !fun.is_value() {
                    frames.push(Frame::AppFun(*arg));
                    current = *fun;
                } else if !arg.is_value() {
                    frames.push(Frame::AppArg(*fun));
                    current = *arg;
                } else {
                    match *fun {
                        ATerm::Lam(ref x, ref body) => {
                            return Ok(Stepped::Continue(plug(&frames, body.subst(x, &arg))));
                        }
                        // A recursive call: record a μ node, outcome is unknown.
                        ATerm::RecMarker => {
                            let continuation = plug(&frames, ATerm::Val(GuardValue::Unknown));
                            let rest = evaluate(continuation, builder)?;
                            return Ok(Stepped::Tree(ExecTree::Mu(Box::new(rest))));
                        }
                        _ => {
                            return Err(TreeError::IllFormed(
                                "application of a non-function value".into(),
                            ))
                        }
                    }
                }
            }
            ATerm::If(guard, then, els) => match *guard {
                ATerm::Val(v) => {
                    if let Some(r) = v.as_const() {
                        let taken = if r.is_positive() { *els } else { *then };
                        return Ok(Stepped::Continue(plug(&frames, taken)));
                    }
                    let then_term = plug(&frames, (*then).clone());
                    let else_term = plug(&frames, *els);
                    let then_tree = evaluate(then_term, builder)?;
                    let else_tree = evaluate(else_term, builder)?;
                    if v.mentions_unknown() {
                        let id = builder.env_nodes;
                        builder.env_nodes += 1;
                        return Ok(Stepped::Tree(ExecTree::Env {
                            id,
                            guard: v,
                            then: Box::new(then_tree),
                            els: Box::new(else_tree),
                        }));
                    }
                    return Ok(Stepped::Tree(ExecTree::Prob {
                        guard: v,
                        then: Box::new(then_tree),
                        els: Box::new(else_tree),
                    }));
                }
                ref g if g.is_value() => {
                    return Err(TreeError::IllFormed("branching on a function value".into()))
                }
                _ => {
                    frames.push(Frame::If(*then, *els));
                    current = *guard;
                }
            },
            ATerm::Score(inner) => match *inner {
                ATerm::Val(v) => {
                    if let Some(r) = v.as_const() {
                        if r.is_negative() {
                            return Ok(Stepped::Tree(ExecTree::Stuck));
                        }
                        return Ok(Stepped::Continue(plug(&frames, ATerm::Val(v))));
                    }
                    if v.mentions_unknown() {
                        // A score whose success depends on an unknown value: be
                        // conservative and treat the path as possibly failing.
                        return Ok(Stepped::Tree(ExecTree::Stuck));
                    }
                    let rest_term = plug(&frames, ATerm::Val(v.clone()));
                    let rest = evaluate(rest_term, builder)?;
                    return Ok(Stepped::Tree(ExecTree::Score {
                        value: v,
                        rest: Box::new(rest),
                    }));
                }
                ref m if m.is_value() => {
                    return Err(TreeError::IllFormed("score of a function value".into()))
                }
                _ => {
                    frames.push(Frame::Score);
                    current = *inner;
                }
            },
            ATerm::Sample => {
                let v = GuardValue::Var(builder.samples);
                builder.samples += 1;
                return Ok(Stepped::Continue(plug(&frames, ATerm::Val(v))));
            }
            ATerm::Prim(p, mut args) => {
                if args.iter().all(ATerm::is_value) {
                    let values: Option<Vec<GuardValue>> = args
                        .iter()
                        .map(|a| match a {
                            ATerm::Val(v) => Some(v.clone()),
                            _ => None,
                        })
                        .collect();
                    let Some(values) = values else {
                        return Err(TreeError::IllFormed(
                            "primitive applied to a function value".into(),
                        ));
                    };
                    // Constant-fold where possible.
                    let folded = if values.iter().all(|v| v.as_const().is_some()) {
                        let concrete: Vec<Rational> =
                            values.iter().map(|v| v.as_const().unwrap().clone()).collect();
                        match p.eval(&concrete) {
                            Some(r) => GuardValue::Const(r),
                            None => return Ok(Stepped::Tree(ExecTree::Stuck)),
                        }
                    } else {
                        GuardValue::Prim(p, values)
                    };
                    return Ok(Stepped::Continue(plug(&frames, ATerm::Val(folded))));
                }
                let i = args
                    .iter()
                    .position(|a| !a.is_value())
                    .expect("some argument is not a value");
                let suffix = args.split_off(i + 1);
                let focus = args.pop().expect("argument at position i");
                frames.push(Frame::Prim(p, args, suffix));
                current = focus;
            }
            ATerm::Var(x) => {
                return Err(TreeError::IllFormed(format!("free variable {x}")));
            }
            ATerm::Val(_) | ATerm::RecMarker | ATerm::Lam(_, _) => {
                return Ok(Stepped::Continue(current));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    #[test]
    fn affine_printer_tree_has_one_prob_node_and_one_mu() {
        let b = catalog::printer_affine(Rational::from_ratio(1, 2));
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 0);
        assert_eq!(tree.sample_count, 1);
        assert_eq!(tree.tree.mu_node_count(), 1);
        assert_eq!(tree.tree.max_mu_per_path(), 1);
        let rendered = tree.tree.render();
        assert!(rendered.contains("prob"));
        assert!(rendered.contains("μ"));
    }

    #[test]
    fn nonaffine_printer_tree_has_two_mu_nodes_on_the_failure_path() {
        let b = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 0);
        assert_eq!(tree.tree.max_mu_per_path(), 2);
        assert_eq!(tree.tree.mu_node_count(), 2);
    }

    #[test]
    fn tired_printer_tree_matches_figure_6a() {
        // Ex. 5.1: one Environment node (the sig(x) branching), probabilistic
        // branches for the p-test and the fair choice, paths with 0, 2 and 3 μ nodes.
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 1);
        assert_eq!(tree.tree.max_mu_per_path(), 3);
        let rendered = tree.tree.render();
        assert!(rendered.contains("env#0"));
        assert!(rendered.contains("⊛"), "environment guard should mention ⊛: {rendered}");
    }

    #[test]
    fn error_reuse_printer_has_env_and_reused_sample() {
        let b = catalog::error_reuse_printer(Rational::parse("0.65").unwrap());
        let tree = build_tree(&b.term).unwrap();
        assert_eq!(tree.env_count, 1);
        assert_eq!(tree.tree.max_mu_per_path(), 3);
        // Samples: e, the sig-test sample, the e-test sample.
        assert_eq!(tree.sample_count, 3);
    }

    #[test]
    fn guards_on_the_argument_become_environment_nodes() {
        // The 1dRW guard x ≤ 0 depends on ⊛ and must be Environment-resolved.
        let b = catalog::random_walk_1d(Rational::from_ratio(1, 2), 1);
        let tree = build_tree(&b.term).unwrap();
        assert!(tree.env_count >= 1);
        assert!(tree.tree.max_mu_per_path() >= 1);
    }

    #[test]
    fn rejects_non_fixpoint_terms() {
        assert_eq!(
            build_tree(&parse_term("1 + 2").unwrap()),
            Err(TreeError::NotFirstOrderFixpoint)
        );
        let higher = parse_term("fix phi x. lam d. phi x d").unwrap();
        assert_eq!(build_tree(&higher), Err(TreeError::NotFirstOrderFixpoint));
    }

    #[test]
    fn stuck_scores_produce_stuck_leaves() {
        let t = parse_term("(fix phi x. if sample <= 1/2 then score(0-1) else phi x) 0").unwrap();
        let tree = build_tree(&t).unwrap();
        let rendered = tree.tree.render();
        assert!(rendered.contains("stuck"));
    }

    #[test]
    fn guard_value_affine_views() {
        let g = GuardValue::Prim(
            Prim::Sub,
            vec![GuardValue::Var(0), GuardValue::Const(Rational::from_ratio(3, 5))],
        );
        let (coeffs, k) = g.as_affine(1).unwrap();
        assert_eq!(coeffs, vec![Rational::one()]);
        assert_eq!(k, Rational::from_ratio(-3, 5));
        assert!(!g.mentions_unknown());
        let h = GuardValue::Prim(Prim::Sub, vec![GuardValue::Var(0), GuardValue::Unknown]);
        assert!(h.mentions_unknown());
        assert!(h.as_affine(1).is_none());
        assert!(format!("{h}").contains("⊛"));
    }
}
