//! Environment strategies, path probabilities and `P_approx` (paper §6.2, §7.2).
//!
//! Given the symbolic execution tree of a recursion body, the Environment
//! resolves every `⊛`-dependent branch. For each strategy `𝔖` the remaining
//! branching is purely probabilistic and the probability `P(𝔖, n)` of making
//! at most `n` recursive calls is a sum of exact polytope volumes (the
//! volume-computation oracle of §7.2). The counting distribution
//!
//! ```text
//! P_approx(0) = min_𝔖 P(𝔖, 0)
//! P_approx(n) = min_𝔖 P(𝔖, n) − min_𝔖 P(𝔖, n−1)
//! ```
//!
//! lower-bounds (w.r.t. `⊑`) the counting pattern of the program for *every*
//! argument (Theorem 6.2); if its shift is AST (Theorem 5.4) the program is
//! AST on every argument (Theorem 5.9).

use crate::tree::{try_build_tree_profiled, ExecTree, SymbolicTree, TreeError};
use probterm_telemetry::{EngineProfile, ProfileCell};
use probterm_numerics::Rational;
use probterm_polytope::UnitCubePolytope;
use probterm_rwalk::{epsilon_ra_implies_ast, CountingDistribution, StepDistribution};
use probterm_spcf::Term;
use std::fmt;
use std::time::{Duration, Instant};

/// Errors raised by the AST verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The symbolic execution tree could not be built.
    Tree(TreeError),
    /// A probabilistic guard is not affine in the sample variables, so the
    /// exact volume oracle does not apply (the paper's implementation makes
    /// the same restriction, §7.2).
    NonLinearGuard(String),
    /// There are too many Environment nodes to enumerate all strategies.
    TooManyEnvironmentNodes(usize),
    /// The cooperative check of [`try_verify_ast`] cancelled the verification
    /// (e.g. the analysis service enforcing a per-request deadline).
    Interrupted,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Tree(e) => write!(f, "{e}"),
            VerifyError::NonLinearGuard(g) => write!(
                f,
                "probabilistic guard `{g}` is not affine in the sample variables"
            ),
            VerifyError::TooManyEnvironmentNodes(n) => {
                write!(f, "too many Environment nodes ({n}) to enumerate strategies")
            }
            VerifyError::Interrupted => write!(f, "AST verification was interrupted"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<TreeError> for VerifyError {
    fn from(e: TreeError) -> Self {
        VerifyError::Tree(e)
    }
}

/// A strategy for the Environment: one branch decision per Environment node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strategy {
    choices: Vec<bool>, // true = then-branch
}

impl Strategy {
    /// The decision for Environment node `id` (`true` = then-branch).
    pub fn takes_then(&self, id: usize) -> bool {
        self.choices.get(id).copied().unwrap_or(true)
    }

    /// Enumerates all strategies for `env_count` Environment nodes.
    pub fn enumerate(env_count: usize) -> Vec<Strategy> {
        (0..(1usize << env_count))
            .map(|bits| Strategy {
                choices: (0..env_count).map(|i| (bits >> i) & 1 == 1).collect(),
            })
            .collect()
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.choices.is_empty() {
            return write!(f, "(trivial)");
        }
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "env#{i}→{}", if *c { "then" } else { "else" })?;
        }
        Ok(())
    }
}

/// A path of the tree under a fixed strategy: the affine constraints that the
/// sample variables must satisfy and the number of `μ` nodes passed.
#[derive(Debug, Clone)]
struct StrategyPath {
    constraints: Vec<(Vec<Rational>, Rational)>,
    mu_count: u64,
    stuck: bool,
}

fn collect_paths(
    tree: &ExecTree,
    dimension: usize,
    strategy: &Strategy,
) -> Result<Vec<StrategyPath>, VerifyError> {
    fn go(
        node: &ExecTree,
        dimension: usize,
        strategy: &Strategy,
        current: &mut StrategyPath,
        out: &mut Vec<StrategyPath>,
    ) -> Result<(), VerifyError> {
        match node {
            ExecTree::Leaf => {
                out.push(current.clone());
                Ok(())
            }
            ExecTree::Stuck => {
                let mut path = current.clone();
                path.stuck = true;
                out.push(path);
                Ok(())
            }
            ExecTree::Mu(rest) => {
                current.mu_count += 1;
                go(rest, dimension, strategy, current, out)?;
                current.mu_count -= 1;
                Ok(())
            }
            ExecTree::Score { value, rest } => {
                // score(V) succeeds iff V ≥ 0, i.e. -V ≤ 0.
                let (coeffs, constant) = value
                    .as_affine(dimension)
                    .ok_or_else(|| VerifyError::NonLinearGuard(value.to_string()))?;
                current
                    .constraints
                    .push((coeffs.iter().map(|c| -c).collect(), constant));
                go(rest, dimension, strategy, current, out)?;
                current.constraints.pop();
                Ok(())
            }
            ExecTree::Prob { guard, then, els } => {
                let (coeffs, constant) = guard
                    .as_affine(dimension)
                    .ok_or_else(|| VerifyError::NonLinearGuard(guard.to_string()))?;
                // then-branch: guard ≤ 0 ⟺ coeffs·α ≤ -constant
                current.constraints.push((coeffs.clone(), -&constant));
                go(then, dimension, strategy, current, out)?;
                current.constraints.pop();
                // else-branch: guard > 0 ⟺ -coeffs·α ≤ constant (closure is fine)
                current
                    .constraints
                    .push((coeffs.iter().map(|c| -c).collect(), constant));
                go(els, dimension, strategy, current, out)?;
                current.constraints.pop();
                Ok(())
            }
            ExecTree::Env { id, then, els, .. } => {
                let chosen = if strategy.takes_then(*id) { then } else { els };
                go(chosen, dimension, strategy, current, out)
            }
        }
    }
    let mut out = Vec::new();
    let mut current = StrategyPath {
        constraints: Vec::new(),
        mu_count: 0,
        stuck: false,
    };
    go(tree, dimension, strategy, &mut current, &mut out)?;
    Ok(out)
}

fn path_volume(path: &StrategyPath, dimension: usize) -> Rational {
    let mut poly = UnitCubePolytope::new(dimension);
    for (coeffs, bound) in &path.constraints {
        poly.add(coeffs.clone(), bound.clone());
    }
    poly.probability()
}

/// `P(𝔖, n)` for one strategy: the probability of reaching a leaf after at
/// most `n` recursive calls. Stuck leaves never count as "at most n calls",
/// which only makes the bound more conservative.
fn strategy_cumulative(
    paths: &[(Rational, u64, bool)],
    n: u64,
) -> Rational {
    paths
        .iter()
        .filter(|(_, calls, stuck)| !*stuck && *calls <= n)
        .map(|(p, _, _)| p.clone())
        .sum()
}

/// The result of the counting-based AST verification.
#[derive(Debug, Clone, PartialEq)]
pub struct AstVerification {
    /// The computed counting distribution `P_approx` (the quantity reported in
    /// Table 2 of the paper).
    pub papprox: CountingDistribution,
    /// The shifted step distribution analysed by Theorem 5.4.
    pub step_distribution: StepDistribution,
    /// `true` iff `P_approx` (shifted) is AST, which by Theorems 6.2 and 5.9
    /// proves that the program is AST on every argument.
    pub verified_ast: bool,
    /// Number of Environment nodes in the symbolic execution tree.
    pub env_nodes: usize,
    /// Number of strategies enumerated.
    pub strategies: usize,
    /// Number of sample variables in the tree.
    pub sample_variables: usize,
    /// The recursive rank observable in the tree (max `μ` nodes on a path).
    pub rank: u64,
    /// Whether the weaker Corollary 5.13 (`rank · (1 − P_approx(0)) ≤ 1`)
    /// already suffices for AST.
    pub verified_by_corollary_5_13: bool,
    /// Monotonic elapsed time of the verification (measured on
    /// `std::time::Instant`).
    pub elapsed: Duration,
    /// Machine profile of the execution-tree construction, present iff the
    /// verification ran through [`try_verify_ast_profiled`] with profiling on.
    pub profile: Option<EngineProfile>,
}

impl fmt::Display for AstVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P_approx = {} ({} strategies over {} environment nodes): {}",
            self.papprox,
            self.strategies,
            self.env_nodes,
            if self.verified_ast { "AST" } else { "not verified" }
        )
    }
}

/// Maximum number of Environment nodes for which strategy enumeration is attempted.
const MAX_ENV_NODES: usize = 20;

/// Verifies almost-sure termination of a (possibly applied) first-order
/// fixpoint program by the counting-based proof system of §6.
///
/// # Errors
///
/// Returns a [`VerifyError`] when the program shape is unsupported, a
/// probabilistic guard is not affine in the sample variables, or there are too
/// many Environment nodes.
///
/// # Examples
///
/// ```
/// use probterm_astver::verify_ast;
/// use probterm_numerics::Rational;
/// use probterm_spcf::catalog;
///
/// // Ex. 1.1 (2) with p = 1/2 is AST (Table 2, second row).
/// let bench = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
/// let result = verify_ast(&bench.term).unwrap();
/// assert!(result.verified_ast);
/// assert_eq!(result.papprox.probability(2), Rational::from_ratio(1, 2));
/// ```
pub fn verify_ast(term: &Term) -> Result<AstVerification, VerifyError> {
    try_verify_ast(term, &mut || Ok(()))
}

/// Like [`verify_ast`], but calls `check` periodically — inside the symbolic
/// execution tree construction and between Environment strategies — and
/// aborts with [`VerifyError::Interrupted`] when it fails. This is the hook
/// through which the analysis service enforces `deadline_ms` *inside* a
/// running verification instead of only before/after it.
///
/// # Errors
///
/// As [`verify_ast`], plus [`VerifyError::Interrupted`].
pub fn try_verify_ast(
    term: &Term,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<AstVerification, VerifyError> {
    try_verify_ast_profiled(term, false, check)
}

/// Like [`try_verify_ast`], optionally tallying a machine profile of the
/// execution-tree construction into the result's `profile` field.
///
/// # Errors
///
/// As [`verify_ast`], plus [`VerifyError::Interrupted`].
pub fn try_verify_ast_profiled(
    term: &Term,
    profile: bool,
    check: &mut dyn FnMut() -> Result<(), ()>,
) -> Result<AstVerification, VerifyError> {
    let start = Instant::now();
    let profile_cell = profile.then(ProfileCell::shared);
    let SymbolicTree {
        tree,
        sample_count,
        env_count,
    } = try_build_tree_profiled(term, profile_cell.as_ref(), check).map_err(|e| match e {
        TreeError::Interrupted => VerifyError::Interrupted,
        other => VerifyError::Tree(other),
    })?;
    if env_count > MAX_ENV_NODES {
        return Err(VerifyError::TooManyEnvironmentNodes(env_count));
    }
    let strategies = Strategy::enumerate(env_count);
    let rank = tree.max_mu_per_path();

    // Pre-compute, per strategy, the (volume, μ-count, stuck) triple of each path.
    let mut per_strategy: Vec<Vec<(Rational, u64, bool)>> = Vec::with_capacity(strategies.len());
    for strategy in &strategies {
        check().map_err(|()| VerifyError::Interrupted)?;
        let paths = collect_paths(&tree, sample_count, strategy)?;
        per_strategy.push(
            paths
                .iter()
                .map(|p| (path_volume(p, sample_count), p.mu_count, p.stuck))
                .collect(),
        );
    }

    // P_approx via minima of cumulative probabilities.
    let mut papprox_pairs: Vec<(u64, Rational)> = Vec::new();
    let mut previous_min = Rational::zero();
    for n in 0..=rank {
        let min_cumulative = per_strategy
            .iter()
            .map(|paths| strategy_cumulative(paths, n))
            .min()
            .unwrap_or_else(Rational::zero);
        let mass = &min_cumulative - &previous_min;
        if mass.is_positive() {
            papprox_pairs.push((n, mass));
        }
        previous_min = min_cumulative;
    }
    let papprox = CountingDistribution::from_pairs(papprox_pairs);
    let step_distribution = papprox.shifted();
    let verified_ast = step_distribution.is_ast();
    let verified_by_corollary = papprox.probability(0).in_unit_interval()
        && epsilon_ra_implies_ast(rank.max(1), &papprox.probability(0));
    Ok(AstVerification {
        papprox,
        step_distribution,
        verified_ast,
        env_nodes: env_count,
        strategies: strategies.len(),
        sample_variables: sample_count,
        rank,
        verified_by_corollary_5_13: verified_by_corollary,
        elapsed: start.elapsed(),
        profile: profile_cell.as_ref().map(|cell| cell.snapshot()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use probterm_spcf::catalog;
    use probterm_spcf::parse_term;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn table2_row1_affine_printer() {
        // Ex. 1.1 (1), p = 1/2: P_approx = 1/2 δ0 + 1/2 δ1.
        let b = catalog::printer_affine(r(1, 2));
        let v = verify_ast(&b.term).unwrap();
        assert!(v.verified_ast);
        assert_eq!(v.papprox.probability(0), r(1, 2));
        assert_eq!(v.papprox.probability(1), r(1, 2));
        assert_eq!(v.rank, 1);
        assert!(v.verified_by_corollary_5_13);
        assert_eq!(v.strategies, 1);
    }

    #[test]
    fn table2_row2_nonaffine_printer() {
        // Ex. 1.1 (2), p = 1/2: P_approx = 1/2 δ0 + 1/2 δ2.
        let b = catalog::printer_nonaffine(r(1, 2));
        let v = verify_ast(&b.term).unwrap();
        assert!(v.verified_ast);
        assert_eq!(v.papprox.probability(0), r(1, 2));
        assert_eq!(v.papprox.probability(2), r(1, 2));
        assert_eq!(v.rank, 2);
        // For p just below 1/2 verification fails.
        let bad = catalog::printer_nonaffine(r(49, 100));
        let v = verify_ast(&bad.term).unwrap();
        assert!(!v.verified_ast);
    }

    #[test]
    fn table2_row3_three_print() {
        // 3print(2/3): P_approx = 2/3 δ0 + 1/3 δ3.
        let b = catalog::three_print(r(2, 3));
        let v = verify_ast(&b.term).unwrap();
        assert!(v.verified_ast);
        assert_eq!(v.papprox.probability(0), r(2, 3));
        assert_eq!(v.papprox.probability(3), r(1, 3));
        assert_eq!(v.rank, 3);
        // 3print(1/2) must not verify (it is in fact not AST).
        let bad = catalog::three_print(r(1, 2));
        assert!(!verify_ast(&bad.term).unwrap().verified_ast);
    }

    #[test]
    fn table2_row4_tired_printer() {
        // Ex. 5.1, p = 0.6: P_approx = 0.6 δ0 + 0.2 δ2 + 0.2 δ3.
        let b = catalog::tired_printer(Rational::parse("0.6").unwrap());
        let v = verify_ast(&b.term).unwrap();
        assert!(v.verified_ast, "verification failed: {v}");
        assert_eq!(v.papprox.probability(0), Rational::parse("0.6").unwrap());
        assert_eq!(v.papprox.probability(2), r(1, 5));
        assert_eq!(v.papprox.probability(3), r(1, 5));
        assert_eq!(v.env_nodes, 1);
        assert_eq!(v.strategies, 2);
        // The corollary needs p ≥ 2/3, so it does not apply at 0.6 (Ex. 5.14).
        assert!(!v.verified_by_corollary_5_13);
        // p = 0.59 is below the 3/5 threshold.
        let below = catalog::tired_printer(Rational::parse("0.59").unwrap());
        assert!(!verify_ast(&below.term).unwrap().verified_ast);
    }

    #[test]
    fn table2_row5_error_reuse_printer() {
        // Ex. 5.15, p = 0.65: P_approx = 0.65 δ0 + 0.06125 δ2 + 0.28875 δ3.
        let b = catalog::error_reuse_printer(Rational::parse("0.65").unwrap());
        let v = verify_ast(&b.term).unwrap();
        assert!(v.verified_ast, "verification failed: {v}");
        assert_eq!(v.papprox.probability(0), Rational::parse("0.65").unwrap());
        assert_eq!(v.papprox.probability(2), Rational::parse("0.06125").unwrap());
        assert_eq!(v.papprox.probability(3), Rational::parse("0.28875").unwrap());
        // p = 0.64 is below the √7 − 2 ≈ 0.6458 threshold and must not verify.
        let below = catalog::error_reuse_printer(Rational::parse("0.64").unwrap());
        assert!(!verify_ast(&below.term).unwrap().verified_ast);
    }

    #[test]
    fn environment_strategies_are_adversarial() {
        // A program that is AST only if the Environment is benign must NOT verify:
        // if the argument-dependent branch goes right, three calls are always made.
        let t = parse_term(
            "(fix phi x. if sample <= 0.55 then x else \
               (if sig(x) <= 1/2 then phi (x+1) else phi (phi (phi (x+1))))) 1",
        )
        .unwrap();
        let v = verify_ast(&t).unwrap();
        // Worst case: 0.55 δ0 + 0.45 δ3 has positive drift, so not verified.
        assert!(!v.verified_ast);
        assert_eq!(v.papprox.probability(3), Rational::parse("0.45").unwrap());
        assert_eq!(v.papprox.probability(1), Rational::zero());
    }

    #[test]
    fn zero_one_law_for_affine_recursion() {
        // Affine recursion (rank 1) with any positive exit probability is AST
        // (the functional zero-one law, §5.4).
        for p in ["0.1", "0.01", "0.9"] {
            let b = catalog::printer_affine(Rational::parse(p).unwrap());
            let v = verify_ast(&b.term).unwrap();
            assert!(v.verified_ast, "affine printer with p = {p}");
            assert!(v.verified_by_corollary_5_13);
        }
    }

    #[test]
    fn random_walk_guard_on_argument_is_beyond_the_counting_method() {
        // 1dRW(1/2, 1): termination hinges on the *size* of the argument
        // (the x ≤ 0 exit test), which the counting-based method deliberately
        // ignores — the Environment can adversarially refuse to exit, so the
        // method reports "not verified" even though the program is AST.
        // (This is the announced orthogonality to Dal Lago & Grellois's
        // sized-type analysis, paper §1.1 and §8.)
        let b = catalog::random_walk_1d(r(1, 2), 1);
        let v = verify_ast(&b.term).unwrap();
        assert!(!v.verified_ast);
        assert!(v.env_nodes >= 1);
        // Every strategy makes exactly one call per unfolding once the exit is
        // refused, so the approximation is δ1.
        assert_eq!(v.papprox.probability(1), Rational::one());
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        assert!(matches!(
            verify_ast(&parse_term("1 + 1").unwrap()),
            Err(VerifyError::Tree(_))
        ));
        // Non-affine guard over samples: multiplication of two samples.
        let t = parse_term(
            "(fix phi x. if sample * sample <= 1/2 then x else phi (phi (x+1))) 0",
        )
        .unwrap();
        assert!(matches!(
            verify_ast(&t),
            Err(VerifyError::NonLinearGuard(_))
        ));
    }

    #[test]
    fn strategy_enumeration_and_display() {
        assert_eq!(Strategy::enumerate(0).len(), 1);
        assert_eq!(Strategy::enumerate(3).len(), 8);
        let s = &Strategy::enumerate(2)[1];
        assert!(s.takes_then(0));
        assert!(!s.takes_then(1));
        assert!(s.to_string().contains("env#0"));
        assert_eq!(Strategy::enumerate(0)[0].to_string(), "(trivial)");
        let b = catalog::printer_affine(r(1, 2));
        let v = verify_ast(&b.term).unwrap();
        assert!(v.to_string().contains("AST"));
    }
}
