//! Automated almost-sure-termination (AST) verification for non-affine
//! recursive SPCF programs.
//!
//! This crate implements the proof system of §6 of *"On Probabilistic
//! Termination of Functional Programs with Continuous Distributions"*
//! (Beutner & Ong, PLDI 2021) and its automation (§7.2):
//!
//! 1. [`build_tree`] constructs the **stochastic symbolic execution tree** of
//!    a first-order fixpoint body (Fig. 6a): sample variables for random
//!    draws, `μ`-nodes for recursive calls, probabilistic branch nodes for
//!    sample-only guards and Environment nodes for guards that depend on the
//!    (unknown) argument or on recursive outcomes.
//! 2. [`verify_ast`] enumerates all **Environment strategies** (Fig. 6b),
//!    computes each path probability as an exact convex-polytope volume
//!    (the volume oracle of §7.2, provided by `probterm-polytope`), derives
//!    the counting distribution **`P_approx`** and decides AST of its shift by
//!    the linear-time random-walk criterion (Thm. 5.4). By Theorems 6.2 and
//!    5.9, a positive answer proves AST of the program on every argument.
//!
//! # Example
//!
//! ```
//! use probterm_astver::verify_ast;
//! use probterm_numerics::Rational;
//! use probterm_spcf::catalog;
//!
//! // Table 2, row "Ex 5.1, p = 0.6": P_approx = 0.6δ0 + 0.2δ2 + 0.2δ3.
//! let bench = catalog::tired_printer(Rational::parse("0.6").unwrap());
//! let verification = verify_ast(&bench.term).unwrap();
//! assert!(verification.verified_ast);
//! ```

#![warn(missing_docs)]

mod papprox;
mod tree;

pub use papprox::{
    try_verify_ast, try_verify_ast_profiled, verify_ast, AstVerification, Strategy, VerifyError,
};
pub use tree::{
    build_tree, try_build_tree, try_build_tree_profiled, ExecTree, GuardValue, SymbolicTree,
    TreeError,
};
