//! Cross-crate integration tests: the worked examples of the paper.
//!
//! Each test reproduces a concrete claim made in the paper (§1.1, §3, §5, §6)
//! end to end, exercising the parser, the reference semantics, the interval
//! lower-bound engine, the counting analysis and the AST verifier together.

use probterm::core::astver::verify_ast;
use probterm::core::counting::{check_guard_independence, recursive_rank_bound};
use probterm::core::intervalsem::{lower_bound, LowerBoundConfig};
use probterm::core::rwalk::epsilon_ra_implies_ast;
use probterm::core::spcf::{catalog, parse_term, Term};
use probterm::numerics::Rational;

fn r(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

/// Example 1.1: program (1) is AST for every p > 0; program (2) is AST iff p ≥ 1/2.
#[test]
fn example_1_1_thresholds() {
    for p in ["0.5", "0.25", "0.05"] {
        let affine = catalog::printer_affine(Rational::parse(p).unwrap());
        assert!(
            verify_ast(&affine.term).unwrap().verified_ast,
            "affine printer p = {p} must be AST"
        );
    }
    for (p, expected) in [("0.5", true), ("0.75", true), ("0.49", false), ("0.25", false)] {
        let nonaffine = catalog::printer_nonaffine(Rational::parse(p).unwrap());
        assert_eq!(
            verify_ast(&nonaffine.term).unwrap().verified_ast,
            expected,
            "non-affine printer p = {p}"
        );
    }
}

/// Example 1.1 (2) with p = 1/4: the termination probability is p/(1-p) = 1/3.
/// The lower bounds converge to it from below and never cross it.
#[test]
fn example_1_1_quarter_lower_bounds_converge_to_one_third() {
    let b = catalog::printer_nonaffine(r(1, 4));
    let shallow = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(40));
    let deep = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(70));
    assert!(shallow.probability <= deep.probability);
    assert!(deep.probability < r(1, 3));
    assert!(deep.probability > r(31, 100));
}

/// Example 3.5: the triangle program is AST and its terminating traces cannot
/// be written as a countable union of boxes — yet interval traces approximate
/// its termination probability arbitrarily well.
#[test]
fn example_3_5_triangle_completeness() {
    let b = catalog::triangle_example();
    let shallow = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(40));
    let deep = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(90));
    // The first path alone already certifies 1/2.
    assert!(shallow.probability >= r(1, 2));
    // Deeper exploration strictly improves the bound towards 1.
    assert!(deep.probability > shallow.probability);
    assert!(deep.probability > r(4, 5));
    assert!(deep.probability < Rational::one());
}

/// Example 5.8 / 5.11: the counting pattern of Ex. 5.1 and its AST threshold 3/5.
#[test]
fn example_5_11_tired_printer_threshold() {
    let ok = catalog::tired_printer(Rational::parse("0.6").unwrap());
    let v = verify_ast(&ok.term).unwrap();
    assert!(v.verified_ast);
    assert_eq!(v.papprox.probability(0), Rational::parse("0.6").unwrap());
    assert_eq!(v.papprox.probability(2), r(1, 5));
    assert_eq!(v.papprox.probability(3), r(1, 5));
    let below = catalog::tired_printer(Rational::parse("0.55").unwrap());
    assert!(!verify_ast(&below.term).unwrap().verified_ast);
}

/// Example 5.14: Corollary 5.13 applies to Ex. 1.1 (2) exactly when p ≥ 1/2,
/// and for Ex. 5.1 only from p ≥ 2/3 (it is strictly weaker than Thm. 5.9).
#[test]
fn example_5_14_corollary_vs_theorem() {
    let two_sites = catalog::printer_nonaffine(r(1, 2));
    let Term::App(fix, _) = &two_sites.term else { panic!() };
    let rank = recursive_rank_bound(fix).unwrap();
    assert_eq!(rank, 2);
    assert!(epsilon_ra_implies_ast(rank, &r(1, 2)));
    // Ex. 5.1 at p = 0.6: the corollary needs 3(1-ε) ≤ 1, i.e. ε ≥ 2/3 — not applicable,
    // while the full verifier (Thm. 5.9) succeeds.
    let tired = catalog::tired_printer(Rational::parse("0.6").unwrap());
    let v = verify_ast(&tired.term).unwrap();
    assert!(v.verified_ast);
    assert!(!v.verified_by_corollary_5_13);
    assert!(!epsilon_ra_implies_ast(3, &Rational::parse("0.6").unwrap()));
}

/// Example 5.15: AST holds exactly from the threshold √7 − 2, and the verifier
/// computes the P_approx reported in Table 2 for p = 0.65.
#[test]
fn example_5_15_error_reuse_threshold() {
    let ok = catalog::error_reuse_printer(Rational::parse("0.65").unwrap());
    let v = verify_ast(&ok.term).unwrap();
    assert!(v.verified_ast);
    assert_eq!(v.papprox.probability(2), Rational::parse("0.06125").unwrap());
    assert_eq!(v.papprox.probability(3), Rational::parse("0.28875").unwrap());
    let below = catalog::error_reuse_printer(Rational::parse("0.645").unwrap());
    assert!(!verify_ast(&below.term).unwrap().verified_ast);
}

/// The guard-independence (progress) type system accepts every Table 2 program
/// and rejects programs that branch on recursive outcomes.
#[test]
fn guard_independence_across_the_catalogue() {
    for b in catalog::table2_benchmarks() {
        let Term::App(fix, _) = b.term.clone() else { panic!() };
        assert!(check_guard_independence(&fix).is_ok(), "{}", b.name);
    }
    let bad = parse_term("fix phi x. if phi x <= 0 then 0 else phi (x + 1)").unwrap();
    assert!(check_guard_independence(&bad).is_err());
}

/// Soundness sanity check across the whole Table 1 catalogue: the exact lower
/// bound never exceeds the known termination probability, and the Monte-Carlo
/// estimate is consistent with both.
///
/// Run counts are tuned per benchmark now that machine runs are cheap:
/// thin-tailed programs (geometric retries, biased/subcritical recursion)
/// get 4× the runs of the old 400×6000 budget at a trimmed step budget —
/// tighter statistical slack at roughly equal wall-clock — while the three
/// heavy-tailed ones (the fair continuous walks and the critical printer,
/// whose hitting times have polynomial tails) keep the full step budget so
/// truncation bias stays small.
#[test]
fn table1_lower_bounds_are_sound_and_consistent_with_simulation() {
    use probterm::core::spcf::{estimate_termination, MonteCarloConfig, Strategy};
    let heavy_tailed = ["pedestrian", "1dRW(1/2,1)", "Ex1.1(2) p=1/2"];
    for b in catalog::table1_benchmarks() {
        let depth = if b.name == "pedestrian" { 25 } else { 40 };
        let result = lower_bound(&b.term, &LowerBoundConfig::default().with_depth(depth));
        if let Some(p) = b.expected_pterm {
            assert!(
                result.probability.to_f64() <= p + 1e-9,
                "{}: lower bound {} exceeds Pterm {}",
                b.name,
                result.probability.to_f64(),
                p
            );
        }
        let (runs, max_steps, slack) = if heavy_tailed.contains(&b.name.as_str()) {
            (600, 6_000, 0.12)
        } else {
            (1_600, 2_500, 0.07)
        };
        let estimate = estimate_termination(
            &b.term,
            &MonteCarloConfig { runs, max_steps, seed: 13, strategy: Strategy::CallByName },
        );
        // The Monte-Carlo estimate can only undershoot the truth by truncation,
        // so the exact lower bound must not exceed it by more than noise.
        assert!(
            result.probability.to_f64() <= estimate.probability() + slack,
            "{}: lower bound {} vs estimate {} ({} runs)",
            b.name,
            result.probability.to_f64(),
            estimate.probability(),
            runs
        );
    }
}

/// The verifier's P_approx is always ⊑-below the empirical counting pattern
/// (Theorem 6.2), checked on the three-call-site printer.
#[test]
fn papprox_lower_bounds_the_counting_pattern() {
    use probterm::core::counting::empirical_counting_pattern;
    let b = catalog::three_print(r(2, 3));
    let v = verify_ast(&b.term).unwrap();
    let Term::App(fix, _) = &b.term else { panic!() };
    // 12 000 one-shot body samples (up from 5 000 — machine runs are cheap)
    // support halving the statistical slack on the cumulative weights.
    let empirical = empirical_counting_pattern(fix, &Rational::from_int(1), 12_000, 3)
        .unwrap()
        .to_distribution();
    let slack = r(1, 40);
    for n in 0..=3u64 {
        assert!(
            v.papprox.cumulative(n) <= empirical.cumulative(n) + &slack,
            "cumulative at {n}: {} vs {}",
            v.papprox.cumulative(n),
            empirical.cumulative(n)
        );
    }
}
