//! Cross-crate integration tests of the analysis pipeline itself:
//! parser ↔ pretty-printer ↔ semantics ↔ interval semantics ↔ type system.

use probterm::core::itypes::{derive_from_exploration, derive_set_type};
use probterm::core::intervalsem::{run_interval, IntervalTrace, ITerm};
use probterm::core::spcf::{
    catalog, infer_type, parse_term, run, terminates_on_trace, FixedTrace, SimpleType, Strategy,
};
use probterm::numerics::{Interval, Rational};
use proptest::prelude::*;

/// Every catalogue program parses, pretty-prints and re-parses to the same AST,
/// and is a closed, simply typed program of base type.
#[test]
fn catalogue_roundtrips_through_the_pretty_printer() {
    let mut all = catalog::table1_benchmarks();
    all.extend(catalog::table2_benchmarks());
    all.push(catalog::triangle_example());
    for b in &all {
        let printed = b.term.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("{}: failed to reparse `{printed}`: {e}", b.name));
        assert_eq!(reparsed, b.term, "{}", b.name);
        assert_eq!(infer_type(&b.term).unwrap(), SimpleType::Real, "{}", b.name);
    }
}

/// Lemma B.2 (used for soundness): if an interval trace terminates for the
/// embedded term, every standard trace refining it terminates for the original
/// term with the same step count. Checked on the non-affine printer.
#[test]
fn refining_standard_traces_terminate_with_equal_step_counts() {
    let b = catalog::printer_nonaffine(Rational::from_ratio(1, 2));
    // Interval trace: first print fails, both reprints succeed.
    // The failure interval must stay strictly above 1/2 so the branch is
    // decided (cf. Fig. 9); it still contains all three standard traces below.
    let itrace = IntervalTrace::from_ratios(&[(51, 100, 1, 1), (0, 1, 1, 2), (0, 1, 1, 2)]);
    // The interval machine embeds `(·)^2ℑ` implicitly; `ITerm::embed` remains
    // the specification artifact and must refine the source term.
    assert!(ITerm::embed(&b.term).refines(&b.term));
    let outcome = run_interval(&b.term, &itrace, 100_000);
    let steps = match outcome {
        probterm::core::intervalsem::IOutcome::Terminated { steps, .. } => steps,
        other => panic!("interval run did not terminate: {other:?}"),
    };
    for raw in [
        [(3i64, 4i64), (1, 4), (1, 4)],
        [(9, 10), (1, 3), (2, 5)],
        [(51, 100), (1, 100), (49, 100)],
    ] {
        let trace = FixedTrace::from_ratios(&raw);
        let result = terminates_on_trace(Strategy::CallByName, &b.term, trace, 100_000)
            .expect("standard trace must terminate");
        assert_eq!(result.steps, steps);
    }
}

/// Theorem 4.1 (soundness direction) end to end: set-type judgements derived
/// from interval traces give lower bounds below the exact lower-bound engine's
/// result at matching depth, which in turn is below the true probability.
#[test]
fn set_type_weights_chain_below_the_lower_bound_engine() {
    let b = catalog::geometric(Rational::from_ratio(1, 2));
    let judgement = derive_from_exploration(&b.term, 60);
    let weight = judgement.termination_lower_bound();
    assert!(weight > Rational::from_ratio(1, 2));
    assert!(weight <= Rational::one());
    let engine = probterm::core::intervalsem::lower_bound(
        &b.term,
        &probterm::core::intervalsem::LowerBoundConfig::default().with_depth(60),
    );
    assert!(weight <= engine.probability);
}

/// Hand-built set-type derivation for the fair coin: exact weight 1 and the
/// exact expected step count.
#[test]
fn manual_set_type_for_a_single_coin() {
    let term = parse_term("if sample <= 1/2 then 0 else 1").unwrap();
    let judgement = derive_set_type(
        &term,
        &[
            IntervalTrace::new(vec![Interval::from_ratios(0, 1, 1, 2)]),
            IntervalTrace::new(vec![Interval::from_ratios(3, 5, 1, 1)]),
        ],
    )
    .unwrap();
    assert_eq!(judgement.termination_lower_bound(), Rational::from_ratio(9, 10));
    assert!(
        judgement.expected_steps_lower_bound()
            >= Rational::from_ratio(9, 10) * Rational::from_int(2)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// CbN and CbV evaluation of the (first-order, sample-free) arithmetic
    /// fragment agree and match direct rational evaluation.
    #[test]
    fn strategies_agree_on_deterministic_arithmetic(a in -20i64..20, b in -20i64..20, c in 1i64..20) {
        // Negative arguments must be parenthesised: `f -5` parses as the
        // subtraction `f - 5`, not an application.
        let src = format!("(lam x. lam y. (x + y) * {c} - min(x, y)) ({a}) ({b})");
        let term = parse_term(&src).unwrap();
        let mut t1 = FixedTrace::new(vec![]);
        let mut t2 = FixedTrace::new(vec![]);
        let r1 = run(Strategy::CallByName, &term, &mut t1, 10_000);
        let r2 = run(Strategy::CallByValue, &term, &mut t2, 10_000);
        let expected = Rational::from_int((a + b) * c - a.min(b));
        match (&r1.outcome, &r2.outcome) {
            (
                probterm::core::spcf::Outcome::Terminated(v1),
                probterm::core::spcf::Outcome::Terminated(v2),
            ) => {
                prop_assert_eq!(v1.as_num().unwrap(), &expected);
                prop_assert_eq!(v2.as_num().unwrap(), &expected);
            }
            other => prop_assert!(false, "unexpected outcomes {:?}", other),
        }
    }

    /// The geometric program terminates on every trace that eventually has a
    /// sample below p, and the returned numeral counts the failures.
    #[test]
    fn geometric_counts_failures(failures in 0usize..8) {
        let term = parse_term("(fix phi x. if sample <= 1/2 then x else phi (x + 1)) 0").unwrap();
        let mut samples: Vec<(i64, i64)> = vec![(3, 4); failures];
        samples.push((1, 4));
        let trace = FixedTrace::from_ratios(&samples);
        let result = terminates_on_trace(Strategy::CallByName, &term, trace, 100_000).unwrap();
        match result.outcome {
            probterm::core::spcf::Outcome::Terminated(v) => {
                prop_assert_eq!(v.as_num().unwrap(), &Rational::from_int(failures as i64));
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Interval-trace weights of disjoint dyadic splits certify the coin up
    /// to the single boundary cell.
    #[test]
    fn dyadic_splits_cover_the_coin(k in 1u32..6) {
        let term = parse_term("if sample <= 1/2 then 0 else 1").unwrap();
        let pieces = Interval::unit().split(1usize << k);
        let mut total = Rational::zero();
        for piece in pieces {
            let trace = IntervalTrace::new(vec![piece]);
            let outcome = run_interval(&term, &trace, 10_000);
            if outcome.is_terminated() {
                total = total + trace.weight();
            }
        }
        // Intervals are closed, so the cell whose lower endpoint *is* 1/2
        // still contains the then-branch trace r = 1/2 and stays undecided
        // (cf. Ex. B.4 and `iterm`'s boundary tests); every other cell is
        // decided. The certified weight is therefore exactly 1 − 2^−k, and
        // it converges to 1 as the split refines.
        prop_assert_eq!(total, Rational::one() - Rational::from_ratio(1, 1i64 << k));
    }
}
